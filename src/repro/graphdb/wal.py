"""Durability: write-ahead log and snapshots for the property graph.

:class:`GraphDatabase` wraps a :class:`~repro.graphdb.store.PropertyGraph`
with persistence: every mutation is appended to a JSON-lines WAL
before being applied, snapshots compact the log, and opening a
database replays ``snapshot + WAL`` to recover exactly the pre-crash
state.  Transactions buffer mutations and append them atomically as
one WAL batch record.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.graphdb.store import Edge, Node, PropertyGraph


class TransactionError(Exception):
    """Raised for misuse of the transaction API."""


class Transaction:
    """A buffered batch of mutations with commit/rollback semantics.

    Reads inside a transaction see the *committed* state (snapshot-ish
    isolation at batch granularity: this models the connector's
    insert-batch-per-report behaviour, not full MVCC).  Node/edge ids
    are assigned at commit; the transaction returns placeholder ids
    that the commit maps to real ones.
    """

    def __init__(self, database: "GraphDatabase"):
        self._db = database
        self._ops: list[dict[str, object]] = []
        self._next_placeholder = -1
        self._closed = False

    def _placeholder(self) -> int:
        value = self._next_placeholder
        self._next_placeholder -= 1
        return value

    def _check_open(self) -> None:
        if self._closed:
            raise TransactionError("transaction already committed or rolled back")

    def create_node(self, label: str, properties: dict[str, object] | None = None) -> int:
        """Buffer a node insert; returns a placeholder id (< 0)."""
        self._check_open()
        ref = self._placeholder()
        self._ops.append(
            {"op": "create_node", "ref": ref, "label": label, "props": dict(properties or {})}
        )
        return ref

    def create_edge(
        self,
        src: int,
        edge_type: str,
        dst: int,
        properties: dict[str, object] | None = None,
    ) -> None:
        """Buffer an edge insert; endpoints may be placeholders."""
        self._check_open()
        self._ops.append(
            {
                "op": "create_edge",
                "src": src,
                "type": edge_type,
                "dst": dst,
                "props": dict(properties or {}),
            }
        )

    def set_node_properties(self, node_id: int, properties: dict[str, object]) -> None:
        self._check_open()
        self._ops.append(
            {"op": "set_node_props", "id": node_id, "props": dict(properties)}
        )

    def commit(self) -> dict[int, int]:
        """Apply the batch; returns placeholder -> real node id."""
        self._check_open()
        self._closed = True
        return self._db._commit(self._ops)

    def rollback(self) -> None:
        self._check_open()
        self._closed = True
        self._ops.clear()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self._closed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


class GraphDatabase:
    """Persistent property graph: snapshot + WAL + transactions.

    Parameters
    ----------
    path:
        Directory for ``snapshot.json`` and ``wal.jsonl``.  ``None``
        keeps the database purely in memory (tests, benchmarks).
    """

    SNAPSHOT = "snapshot.json"
    WAL = "wal.jsonl"

    def __init__(self, path: str | Path | None = None):
        self.graph = PropertyGraph()
        self.path = Path(path) if path is not None else None
        self._write_lock = threading.Lock()
        self._wal_handle = None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            self._recover()
            self._wal_handle = (self.path / self.WAL).open("a", encoding="utf-8")

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        snapshot_path = self.path / self.SNAPSHOT
        if snapshot_path.exists():
            self._load_snapshot(json.loads(snapshot_path.read_text()))
        wal_path = self.path / self.WAL
        if wal_path.exists():
            valid_bytes = 0
            with wal_path.open(encoding="utf-8") as handle:
                for line in handle:
                    stripped = line.strip()
                    if stripped:
                        try:
                            record = json.loads(stripped)
                        except json.JSONDecodeError:
                            # A torn final record from a crash mid-append:
                            # recover up to the last complete record and
                            # truncate the tail (standard WAL recovery).
                            break
                        self._apply(record["ops"], log=False)
                    valid_bytes += len(line.encode("utf-8"))
            if valid_bytes < wal_path.stat().st_size:
                with wal_path.open("r+b") as handle:
                    handle.truncate(valid_bytes)

    def _load_snapshot(self, data: dict) -> None:
        # Node ids must survive restarts verbatim: WAL records written
        # after the snapshot reference them.
        graph = PropertyGraph()
        for node_data in data.get("nodes", []):
            graph.restore_node(
                int(node_data["id"]), node_data["label"], node_data["props"]
            )
        for edge_data in data.get("edges", []):
            graph.create_edge(
                int(edge_data["src"]),
                edge_data["type"],
                int(edge_data["dst"]),
                edge_data["props"],
            )
        self.graph = graph

    # -- mutation path ---------------------------------------------------------

    def _commit(self, ops: list[dict[str, object]]) -> dict[int, int]:
        with self._write_lock:
            if self._wal_handle is not None:
                self._wal_handle.write(json.dumps({"ops": ops}) + "\n")
                self._wal_handle.flush()
            return self._apply(ops, log=False)

    def _apply(self, ops: list[dict[str, object]], log: bool) -> dict[int, int]:
        del log  # WAL append happens in _commit before _apply
        id_map: dict[int, int] = {}

        def real(node_id: int) -> int:
            return id_map.get(node_id, node_id) if node_id < 0 else node_id

        for op in ops:
            kind = op["op"]
            if kind == "create_node":
                node = self.graph.create_node(op["label"], op["props"])
                id_map[int(op["ref"])] = node.node_id
            elif kind == "create_edge":
                self.graph.create_edge(
                    real(int(op["src"])), op["type"], real(int(op["dst"])), op["props"]
                )
            elif kind == "set_node_props":
                self.graph.set_node_properties(real(int(op["id"])), op["props"])
            elif kind == "set_edge_props":
                self.graph.set_edge_properties(int(op["id"]), op["props"])
            else:  # pragma: no cover - corrupted WAL
                raise ValueError(f"unknown WAL operation {kind!r}")
        return id_map

    # -- public API -------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a buffered transaction."""
        return Transaction(self)

    def create_node(self, label: str, properties: dict[str, object] | None = None) -> Node:
        """Auto-committed single-node insert."""
        with self.begin() as tx:
            ref = tx.create_node(label, properties)
            id_map = tx.commit()
        return self.graph.node(id_map[ref])

    def create_edge(
        self,
        src: int,
        edge_type: str,
        dst: int,
        properties: dict[str, object] | None = None,
    ) -> Edge:
        """Auto-committed single-edge insert."""
        with self._write_lock:
            if self._wal_handle is not None:
                ops = [
                    {"op": "create_edge", "src": src, "type": edge_type, "dst": dst,
                     "props": dict(properties or {})}
                ]
                self._wal_handle.write(json.dumps({"ops": ops}) + "\n")
                self._wal_handle.flush()
            return self.graph.create_edge(src, edge_type, dst, properties)

    def set_node_properties(self, node_id: int, properties: dict[str, object]) -> None:
        """Auto-committed property merge on a node."""
        self._commit([{"op": "set_node_props", "id": node_id, "props": dict(properties)}])

    def set_edge_properties(self, edge_id: int, properties: dict[str, object]) -> None:
        """Auto-committed property merge on an edge."""
        self._commit([{"op": "set_edge_props", "id": edge_id, "props": dict(properties)}])

    def snapshot(self) -> None:
        """Write a snapshot and truncate the WAL (log compaction)."""
        if self.path is None:
            return
        with self._write_lock:
            data = {
                "nodes": [
                    {"id": n.node_id, "label": n.label, "props": n.properties}
                    for n in self.graph.nodes()
                ],
                "edges": [
                    {
                        "src": e.src,
                        "type": e.type,
                        "dst": e.dst,
                        "props": e.properties,
                    }
                    for e in self.graph.edges()
                ],
            }
            tmp = self.path / (self.SNAPSHOT + ".tmp")
            tmp.write_text(json.dumps(data))
            tmp.replace(self.path / self.SNAPSHOT)
            if self._wal_handle is not None:
                self._wal_handle.close()
            (self.path / self.WAL).write_text("")
            self._wal_handle = (self.path / self.WAL).open("a", encoding="utf-8")

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["GraphDatabase", "Transaction", "TransactionError"]
