"""Durable property graph on the unified storage engine.

:class:`GraphDatabase` keeps its historical API (transactions with
placeholder ids, auto-committed single mutations, snapshot compaction)
but persistence now lives in :class:`repro.storage.StorageEngine`: the
graph registers a :class:`GraphParticipant` whose op batches are
journalled alongside the search index's and crawl state's, so one
pipeline batch commits across all stores atomically.  A standalone
``GraphDatabase(path)`` simply owns a single-participant engine.
"""

from __future__ import annotations

from pathlib import Path

from repro.graphdb.store import Edge, Node, PropertyGraph
from repro.storage.engine import StorageEngine


class TransactionError(Exception):
    """Raised for misuse of the transaction API."""


class GraphApplyOutcome:
    """What applying one graph op batch produced."""

    __slots__ = ("id_map", "edges")

    def __init__(self, id_map: dict[int, int], edges: list[Edge]):
        self.id_map = id_map
        self.edges = edges


class GraphParticipant:
    """The property graph's storage-engine adapter.

    Ops (one batch preserves one transaction's placeholder scope):

    - ``create_node``: ``ref`` (placeholder < 0), ``label``, ``props``
    - ``create_edge``: ``src``/``dst`` (real or placeholder), ``type``, ``props``
    - ``set_node_props`` / ``set_edge_props``: ``id``, ``props``
    """

    name = "graph"

    def __init__(self, id_base: int = 0) -> None:
        # ``id_base`` gives a sharded partition its disjoint id range;
        # it must survive snapshot reloads and resets so replayed ids
        # keep the same offset.
        self.id_base = int(id_base)
        self.graph = PropertyGraph(id_base=self.id_base)

    def apply(self, ops: list[dict]) -> GraphApplyOutcome:
        id_map: dict[int, int] = {}
        edges: list[Edge] = []

        def real(node_id: int) -> int:
            return id_map.get(node_id, node_id) if node_id < 0 else node_id

        for op in ops:
            kind = op["op"]
            if kind == "create_node":
                node = self.graph.create_node(op["label"], op["props"])
                id_map[int(op["ref"])] = node.node_id
            elif kind == "create_edge":
                edges.append(
                    self.graph.create_edge(
                        real(int(op["src"])),
                        op["type"],
                        real(int(op["dst"])),
                        op["props"],
                    )
                )
            elif kind == "set_node_props":
                self.graph.set_node_properties(real(int(op["id"])), op["props"])
            elif kind == "set_edge_props":
                self.graph.set_edge_properties(int(op["id"]), op["props"])
            else:  # pragma: no cover - corrupted journal
                raise ValueError(f"unknown graph operation {kind!r}")
        return GraphApplyOutcome(id_map, edges)

    def snapshot_data(self) -> dict:
        return {
            "nodes": [
                {"id": n.node_id, "label": n.label, "props": n.properties}
                for n in self.graph.nodes()
            ],
            "edges": [
                {"src": e.src, "type": e.type, "dst": e.dst, "props": e.properties}
                for e in self.graph.edges()
            ],
        }

    def load_snapshot(self, data: dict) -> None:
        # Node ids must survive restarts verbatim: journal records
        # written after the snapshot reference them.
        graph = PropertyGraph(id_base=self.id_base)
        for node_data in data.get("nodes", []):
            graph.restore_node(
                int(node_data["id"]), node_data["label"], node_data["props"]
            )
        for edge_data in data.get("edges", []):
            graph.create_edge(
                int(edge_data["src"]),
                edge_data["type"],
                int(edge_data["dst"]),
                edge_data["props"],
            )
        self.graph = graph

    def reset(self) -> None:
        self.graph = PropertyGraph(id_base=self.id_base)


class Transaction:
    """A buffered batch of mutations with commit/rollback semantics.

    Reads inside a transaction see the *committed* state (snapshot-ish
    isolation at batch granularity: this models the connector's
    insert-batch-per-report behaviour, not full MVCC).  Node/edge ids
    are assigned at commit; the transaction returns placeholder ids
    that the commit maps to real ones.
    """

    def __init__(self, database: "GraphDatabase"):
        self._db = database
        self._ops: list[dict[str, object]] = []
        self._next_placeholder = -1
        self._closed = False

    def _placeholder(self) -> int:
        value = self._next_placeholder
        self._next_placeholder -= 1
        return value

    def _check_open(self) -> None:
        if self._closed:
            raise TransactionError("transaction already committed or rolled back")

    def create_node(self, label: str, properties: dict[str, object] | None = None) -> int:
        """Buffer a node insert; returns a placeholder id (< 0)."""
        self._check_open()
        ref = self._placeholder()
        self._ops.append(
            {"op": "create_node", "ref": ref, "label": label, "props": dict(properties or {})}
        )
        return ref

    def create_edge(
        self,
        src: int,
        edge_type: str,
        dst: int,
        properties: dict[str, object] | None = None,
    ) -> None:
        """Buffer an edge insert; endpoints may be placeholders."""
        self._check_open()
        self._ops.append(
            {
                "op": "create_edge",
                "src": src,
                "type": edge_type,
                "dst": dst,
                "props": dict(properties or {}),
            }
        )

    def set_node_properties(self, node_id: int, properties: dict[str, object]) -> None:
        self._check_open()
        self._ops.append(
            {"op": "set_node_props", "id": node_id, "props": dict(properties)}
        )

    def commit(self) -> dict[int, int]:
        """Apply the batch; returns placeholder -> real node id."""
        self._check_open()
        self._closed = True
        return self._db._commit(self._ops)

    def rollback(self) -> None:
        self._check_open()
        self._closed = True
        self._ops.clear()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self._closed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


class GraphDatabase:
    """Persistent property graph: journal + snapshots + transactions.

    Parameters
    ----------
    path:
        Directory for the storage engine's manifest/journal/snapshots.
        ``None`` keeps the database purely in memory (tests, benchmarks).
    engine:
        An already-open :class:`~repro.storage.StorageEngine` with a
        ``graph`` participant registered; the database attaches to it
        instead of owning one (unified multi-store mode).  Mutually
        exclusive with ``path``.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        engine: StorageEngine | None = None,
        faults=None,
        fsync: bool = True,
    ):
        if engine is not None:
            if path is not None:
                raise ValueError("pass either path or engine, not both")
            self.engine = engine
            self._owns_engine = False
            self._participant = engine.participant(GraphParticipant.name)
        else:
            self._participant = GraphParticipant()
            self.engine = StorageEngine(
                path, [self._participant], faults=faults, fsync=fsync
            )
            self._owns_engine = True

    @property
    def graph(self) -> PropertyGraph:
        return self._participant.graph

    @property
    def path(self) -> Path | None:
        return self.engine.path

    # -- mutation path ----------------------------------------------------

    def _commit(self, ops: list[dict[str, object]]) -> dict[int, int]:
        if not ops:
            return {}
        return self._log(ops).id_map

    def _log(self, ops: list[dict[str, object]]) -> GraphApplyOutcome:
        return self.engine.log(GraphParticipant.name, ops)

    # -- public API -------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a buffered transaction."""
        return Transaction(self)

    def create_node(self, label: str, properties: dict[str, object] | None = None) -> Node:
        """Auto-committed single-node insert."""
        outcome = self._log(
            [{"op": "create_node", "ref": -1, "label": label,
              "props": dict(properties or {})}]
        )
        return self.graph.node(outcome.id_map[-1])

    def create_edge(
        self,
        src: int,
        edge_type: str,
        dst: int,
        properties: dict[str, object] | None = None,
    ) -> Edge:
        """Auto-committed single-edge insert."""
        outcome = self._log(
            [{"op": "create_edge", "src": src, "type": edge_type, "dst": dst,
              "props": dict(properties or {})}]
        )
        return outcome.edges[-1]

    def set_node_properties(self, node_id: int, properties: dict[str, object]) -> None:
        """Auto-committed property merge on a node."""
        self._commit([{"op": "set_node_props", "id": node_id, "props": dict(properties)}])

    def set_edge_properties(self, edge_id: int, properties: dict[str, object]) -> None:
        """Auto-committed property merge on an edge."""
        self._commit([{"op": "set_edge_props", "id": edge_id, "props": dict(properties)}])

    def snapshot(self) -> None:
        """Compact the engine's journal into a fresh snapshot generation."""
        self.engine.checkpoint()

    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = [
    "GraphDatabase",
    "GraphParticipant",
    "Transaction",
    "TransactionError",
]
