"""SecurityKG reproduction.

A full-system reproduction of *"A System for Automated Open-Source
Threat Intelligence Gathering and Management"* (SecurityKG, SIGMOD 2021
demonstration).  The package implements the paper's pipeline --
collection, processing, storage, applications -- together with every
substrate the paper depends on: a simulated OSCTI web, an HTML parser,
an NLP stack with a from-scratch CRF trained by data programming, a
property-graph database with a Cypher subset, BM25 full-text search,
knowledge fusion, and a Barnes-Hut layout engine behind a headless UI.

>>> from repro import SecurityKG, SystemConfig
>>> kg = SecurityKG(SystemConfig(scenario_count=5, reports_per_site=2,
...                              sources=["ThreatPedia"]))
>>> kg.run_once().reports_stored
2

Subpackages
-----------
runtime
    Injected clock (real or virtual discrete-event time), stopwatch,
    retry/backoff policies.
ontology
    Entity/relation vocabulary, intermediate report and CTI
    representations, ontology validation.
websim
    Deterministic synthetic web of 40+ OSCTI sources with ground truth.
htmlparse
    From-scratch HTML tokenizer, DOM and CSS-selector subset.
crawlers
    Crawler framework: frontier, throttling, scheduling, 40+ sources.
nlp
    Tokenization with IOC protection, POS tagging, embeddings, data
    programming, linear-chain CRF NER, dependency-based relations.
graphdb
    In-process property graph database with a Cypher-subset engine.
search
    Inverted index + BM25 full-text search.
core
    Pipeline engine (porters, checkers, parsers, extractors) and the
    SecurityKG facade.
connectors
    Graph, SQL and search storage connectors.
fusion
    Knowledge-fusion stage (alias clustering, node merge).
ui
    Headless UI view-model: Barnes-Hut layout, graph explorer, JSON API.
apps
    Applications over the knowledge graph (threat search, statistics).
"""

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG, SystemReport

__version__ = "1.0.0"

__all__ = ["SecurityKG", "SystemConfig", "SystemReport", "__version__"]
