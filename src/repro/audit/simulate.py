"""Audit-log simulation: benign background + scenario attack traces.

Real enterprise audit streams are overwhelmingly benign noise with the
occasional intrusion whose artifacts match threat-intelligence IOCs.
The simulator reproduces that mix deterministically:

* **benign traffic** -- ordinary processes touching ordinary files,
  internal addresses and popular domains;
* **attack traces** -- for a chosen
  :class:`~repro.websim.scenario.ThreatScenario`, the event sequence
  its behaviours imply (dropper process, payload writes, registry
  persistence, C2 connections, DNS beacons, exfil mail), using the
  *same IOC values the scenario's reports disclose*;
* **contamination** -- a configurable trickle of benign events that
  happen to touch a known-bad artifact (an address reused by a CDN, a
  common file name), the classic source of single-indicator false
  positives that correlation must suppress.

Every event carries ground truth (benign / attack / contaminated and
the scenario id), so hunting quality is exactly measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.audit.events import AuditEvent, AuditEventType
from repro.websim.scenario import ThreatScenario

_BENIGN_PROCESSES = (
    "chrome.exe", "outlook.exe", "winword.exe", "excel.exe", "explorer.exe",
    "svchost.exe", "teams.exe", "code.exe", "python.exe", "backupsvc.exe",
)
_BENIGN_FILES = (
    r"C:\Users\alice\Documents\report.docx",
    r"C:\Users\bob\Downloads\setup.msi",
    r"C:\Windows\Temp\cache.tmp",
    r"C:\ProgramData\app\settings.json",
    r"C:\Users\carol\Desktop\notes.txt",
)
_BENIGN_DOMAINS = (
    "intranet.corp.example", "mail.corp.example", "updates.vendor.example",
    "search.engine.example", "cdn.media.example",
)
_BENIGN_REGISTRY = (
    r"HKCU\Software\App\WindowSize",
    r"HKLM\Software\Vendor\Version",
)
_HOSTS = tuple(f"ws{i:02d}.corp.example" for i in range(1, 13))


@dataclass
class LabeledEvent:
    """An audit event plus its ground truth."""

    event: AuditEvent
    label: str  # 'benign' | 'attack' | 'contaminated'
    scenario_id: int | None = None


@dataclass
class AuditLog:
    """A simulated audit stream with ground truth."""

    entries: list[LabeledEvent] = field(default_factory=list)

    @property
    def events(self) -> list[AuditEvent]:
        return [entry.event for entry in self.entries]

    def truth_for(self, event_id: int) -> LabeledEvent:
        for entry in self.entries:
            if entry.event.event_id == event_id:
                return entry
        raise KeyError(f"no event {event_id}")

    @property
    def attack_event_ids(self) -> set[int]:
        return {
            e.event.event_id for e in self.entries if e.label == "attack"
        }


class AuditLogSimulator:
    """Deterministic audit-stream generator."""

    def __init__(self, seed: int = 5):
        self._rng = random.Random(seed)
        self._next_id = 1
        self._clock = 1_700_000_000.0

    def _emit(
        self,
        log: AuditLog,
        event_type: AuditEventType,
        process: str,
        object_value: str,
        host: str,
        label: str,
        scenario_id: int | None = None,
    ) -> AuditEvent:
        self._clock += self._rng.uniform(0.5, 4.0)
        event = AuditEvent(
            event_id=self._next_id,
            timestamp=self._clock,
            host=host,
            event_type=event_type,
            process=process,
            object_value=object_value,
        )
        self._next_id += 1
        log.entries.append(LabeledEvent(event, label, scenario_id))
        return event

    # -- benign background ----------------------------------------------

    def emit_benign(self, log: AuditLog, count: int) -> None:
        for _ in range(count):
            host = self._rng.choice(_HOSTS)
            process = self._rng.choice(_BENIGN_PROCESSES)
            kind = self._rng.random()
            if kind < 0.3:
                self._emit(
                    log, AuditEventType.FILE_WRITE, process,
                    self._rng.choice(_BENIGN_FILES), host, "benign",
                )
            elif kind < 0.55:
                self._emit(
                    log, AuditEventType.NET_CONNECT, process,
                    f"10.{self._rng.randint(0, 3)}."
                    f"{self._rng.randint(0, 255)}.{self._rng.randint(1, 254)}",
                    host, "benign",
                )
            elif kind < 0.8:
                self._emit(
                    log, AuditEventType.DNS_QUERY, process,
                    self._rng.choice(_BENIGN_DOMAINS), host, "benign",
                )
            elif kind < 0.92:
                self._emit(
                    log, AuditEventType.PROCESS_CREATE, process,
                    self._rng.choice(_BENIGN_PROCESSES), host, "benign",
                )
            else:
                self._emit(
                    log, AuditEventType.REGISTRY_SET, process,
                    self._rng.choice(_BENIGN_REGISTRY), host, "benign",
                )

    # -- attack traces -------------------------------------------------------

    def emit_attack(self, log: AuditLog, scenario: ThreatScenario) -> str:
        """Emit the event sequence a scenario's behaviours imply.

        Returns the victim host.  The artifacts are the scenario's own
        IOC values -- the ones its OSCTI reports disclose -- so a
        hunter armed with the knowledge graph can recognise them.
        """
        host = self._rng.choice(_HOSTS)
        dropper = self._rng.choice(scenario.file_names)
        self._emit(
            log, AuditEventType.PROCESS_CREATE, "outlook.exe", dropper,
            host, "attack", scenario.scenario_id,
        )
        for path in scenario.file_paths[:2]:
            self._emit(
                log, AuditEventType.FILE_WRITE, dropper, path,
                host, "attack", scenario.scenario_id,
            )
        for key in scenario.registry_keys:
            self._emit(
                log, AuditEventType.REGISTRY_SET, dropper, key,
                host, "attack", scenario.scenario_id,
            )
        for ip in scenario.ips[:2]:
            self._emit(
                log, AuditEventType.NET_CONNECT, dropper, ip,
                host, "attack", scenario.scenario_id,
            )
        for domain in scenario.domains[:2]:
            self._emit(
                log, AuditEventType.DNS_QUERY, dropper, domain,
                host, "attack", scenario.scenario_id,
            )
        if scenario.urls:
            self._emit(
                log, AuditEventType.HTTP_REQUEST, dropper, scenario.urls[0],
                host, "attack", scenario.scenario_id,
            )
        if scenario.emails:
            self._emit(
                log, AuditEventType.EMAIL_SEND, dropper, scenario.emails[0],
                host, "attack", scenario.scenario_id,
            )
        return host

    # -- contamination -----------------------------------------------------------

    def emit_contamination(
        self, log: AuditLog, scenario: ThreatScenario, count: int = 2
    ) -> None:
        """Benign events that coincidentally touch a known-bad artifact.

        One isolated indicator match on a host is weak evidence; these
        events exist so single-IOC hunting produces false positives
        that knowledge-graph correlation can suppress.  Each
        coincidence hits a *different* host: two independent reuses of
        the same threat's infrastructure on one machine would not be a
        coincidence any more.
        """
        hosts = self._rng.sample(_HOSTS, k=min(count, len(_HOSTS)))
        for host in hosts:
            process = self._rng.choice(_BENIGN_PROCESSES)
            ioc_kind = self._rng.random()
            if ioc_kind < 0.5 and scenario.ips:
                self._emit(
                    log, AuditEventType.NET_CONNECT, process,
                    self._rng.choice(scenario.ips), host, "contaminated",
                    scenario.scenario_id,
                )
            elif scenario.domains:
                self._emit(
                    log, AuditEventType.DNS_QUERY, process,
                    self._rng.choice(scenario.domains), host, "contaminated",
                    scenario.scenario_id,
                )


def simulate(
    scenarios: list[ThreatScenario],
    attacks: int = 3,
    benign_events: int = 400,
    contamination_per_scenario: int = 1,
    seed: int = 5,
) -> AuditLog:
    """Build a mixed audit log: noise + attacks + contamination.

    ``attacks`` scenarios (the first ones) produce real intrusions on
    random hosts; every attack scenario also contaminates unrelated
    hosts with isolated coincidental matches.
    """
    simulator = AuditLogSimulator(seed=seed)
    log = AuditLog()
    simulator.emit_benign(log, benign_events // 2)
    for scenario in scenarios[:attacks]:
        simulator.emit_attack(log, scenario)
        simulator.emit_contamination(
            log, scenario, count=contamination_per_scenario
        )
        simulator.emit_benign(log, benign_events // (2 * max(1, attacks)))
    simulator.emit_benign(
        log, benign_events - sum(1 for e in log.entries if e.label == "benign")
    )
    return log


__all__ = [
    "AuditLog",
    "AuditLogSimulator",
    "LabeledEvent",
    "simulate",
]
