"""System-audit substrate for knowledge-enhanced threat protection.

Implements the substrate the paper's future work connects to: an
audit-event model and a deterministic workload simulator mixing benign
noise, scenario-derived attack traces, and coincidental IOC matches.
The hunter that consumes this lives in
:mod:`repro.apps.threat_hunting`.
"""

from repro.audit.events import (
    EVENT_TYPES_BY_IOC_KIND,
    AuditEvent,
    AuditEventType,
)
from repro.audit.simulate import (
    AuditLog,
    AuditLogSimulator,
    LabeledEvent,
    simulate,
)

__all__ = [
    "AuditEvent",
    "AuditEventType",
    "AuditLog",
    "AuditLogSimulator",
    "EVENT_TYPES_BY_IOC_KIND",
    "LabeledEvent",
    "simulate",
]
