"""System audit events.

The paper's future work connects SecurityKG "to our system-auditing-
based threat protection systems [17, 23, 24] to achieve knowledge-
enhanced threat protection".  This package implements that connection:
an audit-event model compatible with what kernel-level monitors (ETW,
auditd) emit, a workload simulator, and a knowledge-graph-driven
hunter (:mod:`repro.apps.threat_hunting`).

An event is subject (process) + action + object (file, address,
registry key, ...) at a time on a host -- the shape AIQL/SAQL-style
systems query.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class AuditEventType(str, enum.Enum):
    """Audit actions relevant to CTI-driven hunting."""

    PROCESS_CREATE = "process_create"
    FILE_WRITE = "file_write"
    FILE_DELETE = "file_delete"
    NET_CONNECT = "net_connect"
    DNS_QUERY = "dns_query"
    HTTP_REQUEST = "http_request"
    REGISTRY_SET = "registry_set"
    EMAIL_SEND = "email_send"


@dataclass
class AuditEvent:
    """One audit record.

    ``object_value`` is the artifact acted on -- exactly the strings
    OSCTI IOCs describe (file paths, IPs, domains, URLs, registry
    keys, email addresses), which is what makes KG-driven matching
    possible.
    """

    event_id: int
    timestamp: float
    host: str
    event_type: AuditEventType
    process: str
    object_value: str
    attributes: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "event_id": self.event_id,
            "timestamp": self.timestamp,
            "host": self.host,
            "event_type": self.event_type.value,
            "process": self.process,
            "object_value": self.object_value,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuditEvent":
        return cls(
            event_id=int(data["event_id"]),
            timestamp=float(data["timestamp"]),
            host=str(data["host"]),
            event_type=AuditEventType(str(data["event_type"])),
            process=str(data["process"]),
            object_value=str(data["object_value"]),
            attributes=dict(data.get("attributes", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "AuditEvent":
        return cls.from_dict(json.loads(payload))


#: Event types on which each IOC kind can appear.
EVENT_TYPES_BY_IOC_KIND: dict[str, tuple[AuditEventType, ...]] = {
    "IP": (AuditEventType.NET_CONNECT,),
    "Domain": (AuditEventType.DNS_QUERY,),
    "URL": (AuditEventType.HTTP_REQUEST,),
    "Email": (AuditEventType.EMAIL_SEND,),
    "FileName": (AuditEventType.PROCESS_CREATE, AuditEventType.FILE_WRITE),
    "FilePath": (AuditEventType.FILE_WRITE, AuditEventType.FILE_DELETE),
    "Registry": (AuditEventType.REGISTRY_SET,),
    "Hash": (AuditEventType.PROCESS_CREATE,),
}

__all__ = ["AuditEvent", "AuditEventType", "EVENT_TYPES_BY_IOC_KIND"]
