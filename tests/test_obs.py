"""Tests for the deterministic observability layer (repro.obs)."""

import json
import re
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SecurityKG, SystemConfig
from repro.apps.stats import compute_stats
from repro.cli import main as cli_main
from repro.obs import (
    NO_OBS,
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    make_obs,
)
from repro.obs.summary import load_trace, render_report_trees, summarize
from repro.runtime import clock_from_name
from repro.storage import CrashInjector, InjectedCrash
from repro.ui.server import ExplorerAPI

REPO_ROOT = Path(__file__).resolve().parents[1]


def virtual_tracer(ring: int = 8192) -> Tracer:
    return Tracer(clock_from_name("virtual"), ring=ring)


class TestTracer:
    def test_thread_local_nesting(self):
        tracer = virtual_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = tracer.export()
        assert [r["name"] for r in records] == ["outer", "inner"]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]

    def test_explicit_parent_beats_current(self):
        tracer = virtual_tracer()
        with tracer.span("root") as root:
            pass
        with tracer.span("elsewhere"):
            with tracer.span("child", parent=root):
                pass
        records = {r["name"]: r for r in tracer.export()}
        assert records["child"]["parent"] == records["root"]["id"]

    def test_null_parent_coerced(self):
        tracer = virtual_tracer()
        with tracer.span("child", parent=NULL_SPAN):
            pass
        assert tracer.export()[0]["parent"] is None

    def test_canonical_preorder_ids(self):
        tracer = virtual_tracer()
        with tracer.span("root"):
            with tracer.span("b"):
                pass
            with tracer.span("a"):
                pass
        records = tracer.export()
        assert [r["id"] for r in records] == [1, 2, 3]
        # siblings with identical virtual timestamps sort by name
        assert [r["name"] for r in records] == ["root", "a", "b"]
        assert tracer.export() == records  # stable across exports

    def test_ring_eviction_orphans_become_roots(self):
        tracer = virtual_tracer(ring=2)
        with tracer.span("parent") as parent:
            pass
        with tracer.span("child", parent=parent):
            pass
        with tracer.span("filler"):
            pass  # pushes "parent" out of the ring
        records = tracer.export()
        assert sorted(r["name"] for r in records) == ["child", "filler"]
        assert all(r["parent"] is None for r in records)

    def test_exception_sets_error_attr_and_closes(self):
        tracer = virtual_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.open_span_count == 0
        record = tracer.export()[0]
        assert record["attrs"]["error"] == "ValueError"

    def test_open_span_introspection(self):
        tracer = virtual_tracer()
        with tracer.span("work") as span:
            assert tracer.open_span_count == 1
            assert tracer.open_spans() == [span]
            assert tracer.current() is span
        assert tracer.open_span_count == 0
        assert tracer.current() is None

    def test_set_returns_self_for_chaining(self):
        tracer = virtual_tracer()
        with tracer.span("s") as span:
            assert span.set("k", "v") is span
        assert tracer.export()[0]["attrs"] == {"k": "v"}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = virtual_tracer()
        with tracer.span("a", report="rpt-1"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        assert load_trace(path) == tracer.export()

    def test_clear(self):
        tracer = virtual_tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.export() == []


class TestNullObjects:
    def test_null_tracer_shares_one_span(self):
        assert NULL_TRACER.span("anything", x=1) is NULL_SPAN
        with NULL_TRACER.span("a") as span:
            assert span.set("k", "v") is span
            assert span.duration == 0.0
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.export_jsonl() == ""
        assert NULL_TRACER.open_span_count == 0

    def test_null_metrics_noops(self):
        NULL_METRICS.inc("c")
        NULL_METRICS.observe("h", 1.0)
        NULL_METRICS.set_gauge("g", 2.0)
        assert NULL_METRICS.counter("c") == 0
        assert NULL_METRICS.names() == []
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_no_obs_disabled(self):
        assert not NO_OBS.enabled
        assert make_obs(clock_from_name("virtual")).enabled


class TestMetricsRegistry:
    def test_labelled_counters(self):
        metrics = MetricsRegistry()
        metrics.inc("crawl.pages", source="A")
        metrics.inc("crawl.pages", 2, source="A")
        metrics.inc("crawl.pages", source="B")
        assert metrics.counter("crawl.pages", source="A") == 3
        assert metrics.counter_total("crawl.pages") == 4

    def test_zero_increment_dropped(self):
        metrics = MetricsRegistry()
        metrics.inc("skips", 0)
        assert metrics.names() == []

    def test_label_key_order_independent(self):
        metrics = MetricsRegistry()
        metrics.inc("c", b="2", a="1")
        metrics.inc("c", a="1", b="2")
        assert metrics.snapshot()["counters"]["c"] == {"a=1,b=2": 2}

    def test_max_gauge_never_lowers(self):
        metrics = MetricsRegistry()
        metrics.max_gauge("depth", 5)
        metrics.max_gauge("depth", 3)
        assert metrics.snapshot()["gauges"]["depth"][""] == 5

    def test_histogram_buckets(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 0.0005)
        metrics.observe("lat", 100.0)
        series = metrics.snapshot()["histograms"]["lat"][""]
        assert series["buckets"]["0.001"] == 1
        assert series["buckets"]["+Inf"] == 1
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(100.0005)

    def test_custom_bucket_ladder(self):
        metrics = MetricsRegistry(buckets={"lat": (1.0, 2.0)})
        metrics.observe("lat", 1.5)
        buckets = metrics.snapshot()["histograms"]["lat"][""]["buckets"]
        assert buckets == {"1.0": 0, "2.0": 1, "+Inf": 0}

    def test_snapshot_is_json_safe_and_sorted(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.inc("a")
        snapshot = metrics.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1000.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=30,
        )
    )
    def test_bucket_boundary_semantics(self, values):
        """Pin the slotting rule: first bucket with ``value <= bound``.

        Boundaries are *inclusive upper bounds* (a value exactly equal
        to a bound lands in that bound's slot, Prometheus-style) and
        anything above the last bound lands in ``+Inf``.
        """
        from repro.obs.metrics import DEFAULT_BUCKETS

        metrics = MetricsRegistry()
        for value in values:
            metrics.observe("lat", value)
        if not values:
            assert "lat" not in metrics.snapshot()["histograms"]
            return
        series = metrics.snapshot()["histograms"]["lat"][""]

        expected = {str(bound): 0 for bound in DEFAULT_BUCKETS}
        expected["+Inf"] = 0
        for value in values:
            for bound in DEFAULT_BUCKETS:
                if value <= bound:
                    expected[str(bound)] += 1
                    break
            else:
                expected["+Inf"] += 1
        assert series["buckets"] == expected
        assert series["count"] == len(values)
        assert sum(series["buckets"].values()) == series["count"]
        assert series["sum"] == pytest.approx(sum(values))

    def test_bucket_exact_boundary_is_inclusive(self):
        from repro.obs.metrics import DEFAULT_BUCKETS

        metrics = MetricsRegistry()
        for bound in DEFAULT_BUCKETS:
            metrics.observe("lat", bound)
        buckets = metrics.snapshot()["histograms"]["lat"][""]["buckets"]
        assert all(buckets[str(bound)] == 1 for bound in DEFAULT_BUCKETS)
        assert buckets["+Inf"] == 0


SMALL_SYSTEM = dict(scenario_count=6, reports_per_site=2, seed=7, clock="virtual")


def run_traced_system():
    clock = clock_from_name("virtual")
    obs = make_obs(clock)
    kg = SecurityKG(SystemConfig(**SMALL_SYSTEM), clock=clock, obs=obs)
    report = kg.run_once()
    fusion = kg.run_fusion()
    return kg, report, fusion, obs


@pytest.fixture(scope="module")
def traced_run():
    return run_traced_system()


class TestSystemTracing:
    def test_golden_trace_byte_identical(self, traced_run):
        _, _, _, obs = traced_run
        _, _, _, obs2 = run_traced_system()
        first = obs.tracer.export_jsonl()
        second = obs2.tracer.export_jsonl()
        assert first  # a real trace, not two empty strings
        assert first == second

    def test_counters_deterministic(self, traced_run):
        _, _, _, obs = traced_run
        _, _, _, obs2 = run_traced_system()
        assert obs.metrics.snapshot()["counters"] == (
            obs2.metrics.snapshot()["counters"]
        )

    def test_no_orphan_spans(self, traced_run):
        _, _, _, obs = traced_run
        assert obs.tracer.open_span_count == 0

    def test_span_tree_well_formed(self, traced_run):
        _, _, _, obs = traced_run
        records = obs.tracer.export()
        for index, record in enumerate(records, start=1):
            assert record["id"] == index
            assert record["parent"] is None or record["parent"] < record["id"]
            assert record["end"] >= record["start"]

    def test_expected_span_taxonomy(self, traced_run):
        _, _, _, obs = traced_run
        names = {record["name"] for record in obs.tracer.export()}
        assert {
            "run",
            "crawl",
            "crawl.fetch",
            "pipeline",
            "extract.ner",
            "extract.relation",
            "store",
            "store.ingest",
            "storage.commit",
            "fuse",
        } <= names

    def test_report_correlation_ids(self, traced_run):
        _, report, _, obs = traced_run
        reports = {
            record["attrs"]["report"]
            for record in obs.tracer.export()
            if "report" in record["attrs"]
        }
        assert len(reports) >= report.reports_stored > 0

    def test_system_report_carries_metrics(self, traced_run):
        _, report, _, _ = traced_run
        counters = report.metrics["counters"]
        assert counters["storage.commits"][""] > 0
        assert sum(counters["extract.entities"].values()) > 0

    def test_fusion_metrics(self, traced_run):
        _, _, fusion, obs = traced_run
        counters = obs.metrics.snapshot()["counters"]
        if fusion.groups_merged:
            assert counters["fusion.groups_merged"][""] == fusion.groups_merged

    def test_graph_gauges_match_graph(self, traced_run):
        kg, _, _, obs = traced_run
        gauges = obs.metrics.snapshot()["gauges"]
        assert gauges["graph.nodes"][""] == kg.graph.node_count
        assert gauges["graph.edges"][""] == kg.graph.edge_count

    def test_stats_agree_with_and_without_metrics(self, traced_run):
        kg, _, _, obs = traced_run
        plain = compute_stats(kg.graph)
        from_metrics = compute_stats(kg.graph, metrics=obs.metrics.snapshot())
        assert from_metrics == plain

    def test_ui_endpoints(self, traced_run):
        kg, _, _, obs = traced_run
        api = ExplorerAPI(kg)
        status, payload = api.handle("GET", "/metrics")
        assert status == 200
        assert payload == obs.metrics.snapshot()
        status, payload = api.handle("GET", "/api/trace")
        assert status == 200
        assert payload["spans"] == obs.tracer.export()

    def test_untraced_system_stays_dark(self):
        kg = SecurityKG(SystemConfig(**SMALL_SYSTEM))
        report = kg.run_once()
        assert kg.obs is NO_OBS
        assert report.metrics == NULL_METRICS.snapshot()
        assert kg.obs.tracer.export() == []


class TestCrashSafety:
    @given(seed=st.integers(0, 9999))
    @settings(max_examples=10, deadline=None)
    def test_every_span_closes_under_injected_crashes(self, seed):
        with tempfile.TemporaryDirectory() as tmp:
            clock = clock_from_name("virtual")
            obs = make_obs(clock)
            kg = SecurityKG(
                SystemConfig(
                    scenario_count=4,
                    reports_per_site=1,
                    sources=["ThreatPedia"],
                    clock="virtual",
                    storage_path=f"{tmp}/state",
                ),
                clock=clock,
                obs=obs,
                faults=CrashInjector.seeded(seed),
            )
            try:
                kg.run_once()
                kg.checkpoint()
                kg.close()
            except InjectedCrash:
                pass
            assert obs.tracer.open_span_count == 0
            for record in obs.tracer.export():
                assert record["end"] >= record["start"]


class TestCli:
    SMALL = (
        "--scenarios", "5", "--reports-per-site", "2", "--clock", "virtual",
    )

    def run_cli(self, *argv):
        import io

        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
        code, output = self.run_cli("run", *self.SMALL, "--trace", str(path))
        assert code == 0, output
        assert re.search(r"wrote \d+ spans to", output)
        return path

    def test_run_trace_golden(self, tmp_path, trace_file):
        second = tmp_path / "second.jsonl"
        code, _ = self.run_cli("run", *self.SMALL, "--trace", str(second))
        assert code == 0
        assert second.read_bytes() == trace_file.read_bytes()
        assert trace_file.stat().st_size > 0

    def test_stats_from_trace(self, trace_file):
        code, output = self.run_cli("stats", "--from-trace", str(trace_file))
        assert code == 0
        assert "distinct names" in output
        assert "crawl.fetch" in output

    def test_stats_from_trace_report_drilldown(self, trace_file):
        spans = load_trace(trace_file)
        report_id = next(
            span["attrs"]["report"]
            for span in spans
            if "report" in span["attrs"]
        )
        code, output = self.run_cli(
            "stats", "--from-trace", str(trace_file), "--report", report_id
        )
        assert code == 0
        assert "under " in output
        assert report_id in output
        assert output == render_report_trees(spans, report_id) + "\n"

    def test_stats_from_trace_no_match(self, trace_file):
        code, output = self.run_cli(
            "stats", "--from-trace", str(trace_file), "--report", "zzz-none"
        )
        assert code == 0
        assert "no spans matching" in output

    def test_run_metrics_flag_prints_snapshot(self):
        code, output = self.run_cli("run", *self.SMALL, "--metrics")
        assert code == 0
        assert '"counters"' in output
        assert "crawl.pages" in output

    def test_run_metrics_out_writes_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        code, output = self.run_cli(
            "run", *self.SMALL, "--metrics-out", str(path)
        )
        assert code == 0
        assert "wrote metrics snapshot" in output
        snapshot = json.loads(path.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["storage.commits"][""] > 0

    def test_summarize_empty(self):
        assert summarize([]) == "trace is empty"


class TestDocumentationSweep:
    """Every span/metric name the code can emit is catalogued."""

    @pytest.fixture(scope="class")
    def catalogue(self):
        return (REPO_ROOT / "OBSERVABILITY.md").read_text(encoding="utf-8")

    def test_runtime_names_documented(self, traced_run, catalogue):
        _, _, _, obs = traced_run
        names = {record["name"] for record in obs.tracer.export()}
        names |= set(obs.metrics.names())
        missing = {name for name in names if f"`{name}`" not in catalogue}
        assert not missing, f"undocumented in OBSERVABILITY.md: {sorted(missing)}"

    def test_static_names_documented(self, catalogue):
        span_re = re.compile(r"\.span\(\s*\n?\s*\"([^\"]+)\"")
        metric_re = re.compile(
            r"\.(?:inc|observe|set_gauge|max_gauge)\(\s*\n?\s*\"([^\"]+)\""
        )
        names: set[str] = set()
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            names.update(span_re.findall(source))
            names.update(metric_re.findall(source))
        assert names, "static sweep found no instrumentation literals"
        missing = {name for name in names if f"`{name}`" not in catalogue}
        assert not missing, f"undocumented in OBSERVABILITY.md: {sorted(missing)}"
