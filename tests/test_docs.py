"""Docs drift sweeps: serving surfaces must match their documentation.

Two contracts, each checked in *both* directions so neither the code
nor the docs can drift silently:

* every UI route in :data:`repro.ui.server.ROUTES` appears in the
  ``ui/server.py`` module docstring's route table, and every
  ``GET/POST /path`` token in that table is a registered route;
* every CLI subcommand registered on the argparse parser appears in the
  ``repro.cli`` module docstring's usage examples, and every
  ``python -m repro <command>`` example names a real subcommand.

DISSEMINATION.md is part of the serving story: the feeds routes and
the ``feed`` subcommand must be documented there too.
"""

import argparse
import re
from pathlib import Path

import repro.cli as cli
import repro.ui.server as server

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``\`\`GET  /path\`\``` tokens in the route table (method + path in
#: one literal), tolerant of column-alignment whitespace.
ROUTE_TOKEN = re.compile(r"``(GET|POST)\s+(/[^`\s]+)``")

#: ``python -m repro <command>`` usage examples in the CLI docstring.
CLI_EXAMPLE = re.compile(r"python -m repro\s+([a-z][a-z0-9-]*)")


def documented_routes() -> set[tuple[str, str]]:
    return {
        (method, path)
        for method, path in ROUTE_TOKEN.findall(server.__doc__)
    }


def cli_subcommands() -> set[str]:
    parser = cli.build_parser()
    actions = [
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    assert len(actions) == 1
    return set(actions[0].choices)


class TestUiRouteTable:
    def test_every_route_is_documented(self):
        documented = documented_routes()
        for method, path in server.ROUTES:
            assert (method, path) in documented or path in server.__doc__, (
                f"route {method} {path} is served but missing from the "
                "ui/server.py docstring table"
            )

    def test_every_documented_route_exists(self):
        for method, path in documented_routes():
            assert (method, path) in server.ROUTES, (
                f"docstring documents {method} {path} but ROUTES does not "
                "serve it"
            )

    def test_feeds_routes_are_served(self):
        assert ("GET", "/feeds") in server.ROUTES
        assert ("GET", "/feeds/<tier>") in server.ROUTES

    def test_registry_matches_dispatch(self):
        """Spot-check the registry against the live dispatcher: every
        GET route without a placeholder answers something other than
        404, and an unregistered path answers exactly 404."""
        from repro.core.config import SystemConfig
        from repro.core.system import SecurityKG

        api = server.ExplorerAPI(
            SecurityKG(
                SystemConfig(
                    scenario_count=3, reports_per_site=1,
                    sources=["ThreatPedia"], connectors=["graph", "search"],
                    clock="virtual",
                )
            )
        )
        for method, path in server.ROUTES:
            if method != "GET" or "<" in path:
                continue
            status, _payload, _headers = api.handle_full(method, path)
            assert status != 404, f"registered route {method} {path} 404s"
        status, _payload, _headers = api.handle_full("GET", "/api/nonsense")
        assert status == 404


class TestCliDocstring:
    def test_every_subcommand_has_a_usage_example(self):
        documented = set(CLI_EXAMPLE.findall(cli.__doc__))
        for name in cli_subcommands():
            assert name in documented, (
                f"CLI subcommand {name!r} has no usage example in the "
                "repro.cli docstring"
            )

    def test_every_usage_example_is_a_subcommand(self):
        known = cli_subcommands()
        for name in CLI_EXAMPLE.findall(cli.__doc__):
            assert name in known, (
                f"repro.cli docstring shows `python -m repro {name}` but "
                f"no such subcommand exists"
            )

    def test_feed_subcommands(self):
        parser = cli.build_parser()
        args = parser.parse_args(
            ["feed", "export", "--out-dir", "/tmp/x", "--tier", "public"]
        )
        assert args.feed_command == "export"
        args = parser.parse_args(["feed", "serve", "--port", "0"])
        assert args.feed_command == "serve"


class TestProfilingDoc:
    def test_profile_subcommand_is_parseable(self):
        parser = cli.build_parser()
        args = parser.parse_args(
            ["profile", "--from-trace", "t.jsonl", "--flame", "out.folded"]
        )
        assert args.flame == "out.folded"
        args = parser.parse_args(
            ["profile", "--from-trace", "t.jsonl", "--json", "--top", "5"]
        )
        assert args.json and args.top == 5

    def test_observability_md_documents_profiling(self):
        text = (REPO_ROOT / "OBSERVABILITY.md").read_text(encoding="utf-8")
        for needle in (
            "repro profile",
            "--from-trace",
            "--flame",
            "self_s",
            "GET /profile",
            "PROFILE MATCH",
            "perf_baseline.json",
            "REPRO_UPDATE_PERF_BASELINE",
        ):
            assert needle in text, (
                f"OBSERVABILITY.md never mentions {needle!r}"
            )

    def test_readme_shows_profile_quickstart(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "repro profile" in readme
        assert "PROFILE MATCH" in readme


class TestDisseminationDoc:
    def test_dissemination_md_exists(self):
        assert (REPO_ROOT / "DISSEMINATION.md").exists()

    def test_core_contract_is_documented(self):
        text = (REPO_ROOT / "DISSEMINATION.md").read_text(encoding="utf-8")
        for needle in (
            "/feeds/<tier>",
            "public",
            "partner",
            "internal",
            "TLP",
            "cursor",
            "ETag",
            "If-None-Match",
            "X-API-Key",
            "feed_keys",
            "repro feed export",
        ):
            assert needle in text, f"DISSEMINATION.md never mentions {needle!r}"

    def test_cross_linked(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "DISSEMINATION.md" in readme
        assert "DISSEMINATION.md" in design
