"""Integration: the stored knowledge graph matches the corpus ground truth.

The web simulator knows exactly which entities, relations and IOCs
every report contains.  After a full collect -> process -> store cycle
the knowledge graph must reflect that truth: every disclosed IOC is a
node connected to its report, and gold relations materialise as typed
edges between the right entities.
"""

import pytest

from repro import SecurityKG, SystemConfig
from repro.ontology import canonical_name, normalize_verb


@pytest.fixture(scope="module")
def system():
    kg = SecurityKG(
        SystemConfig(
            scenario_count=8,
            reports_per_site=4,
            sources=["ThreatPedia", "SecureListing", "NVD Shadow"],
            connectors=["graph"],
        )
    )
    kg.run_once()
    return kg


def _find(kg, label, name):
    return kg.graph.find_node(label, merge_key=canonical_name(name))


class TestIocCoverage:
    def test_every_disclosed_ioc_is_a_node(self, system):
        site = system.web.site_by_name("ThreatPedia")
        for article in site.articles()[:6]:
            for kind, values in article.content.ioc_table.items():
                for value in values:
                    node = _find(system, kind, value)
                    assert node is not None, (kind, value)

    def test_ioc_nodes_link_back_to_their_reports(self, system):
        from repro.core.porter import report_id_for

        site = system.web.site_by_name("SecureListing")
        article = site.articles()[0]
        report_id = report_id_for(article.url)
        report_node = next(
            (
                n
                for n in system.graph.nodes()
                if n.properties.get("report_id") == report_id
            ),
            None,
        )
        assert report_node is not None
        mentioned = {
            canonical_name(str(n.properties.get("name", "")))
            for n in system.graph.neighbors(
                report_node.node_id, edge_type="MENTIONS", direction="out"
            )
        }
        disclosed = {
            canonical_name(v)
            for values in article.content.ioc_table.values()
            for v in values
        }
        assert disclosed <= mentioned


class TestRelationCoverage:
    def test_gold_relations_materialise_as_typed_edges(self, system):
        site = system.web.site_by_name("ThreatPedia")
        checked = missing = 0
        for article in site.articles()[:8]:
            for sentence in article.content.truth.sentences:
                for gold in sentence.relations:
                    head = _find(system, gold.head_type.value, gold.head_text)
                    tail = _find(system, gold.tail_type.value, gold.tail_text)
                    if head is None or tail is None:
                        missing += 1
                        continue
                    edge_type = normalize_verb(gold.verb).value
                    edges = [
                        e
                        for e in system.graph.out_edges(head.node_id, edge_type)
                        if e.dst == tail.node_id
                    ]
                    checked += 1
                    if not edges:
                        missing += 1
        assert checked > 10
        # the gazetteer extractor misses unseen names; everything it
        # can see must be wired correctly
        assert missing <= checked * 0.5

    def test_edges_carry_provenance(self, system):
        behavioural = [
            e
            for e in system.graph.edges()
            if e.type in ("DROPS", "CONNECTS_TO", "USES", "ENCRYPTS")
        ]
        assert behavioural
        for edge in behavioural[:20]:
            assert edge.properties.get("reports"), edge
            assert edge.properties.get("weight", 0) >= 1
