"""Preemptable Cypher execution: planner, iterators, pagination, UI.

The core contract under test: a physical plan run slice-by-slice --
suspended at arbitrary safe points and resumed from its JSON-safe
continuation -- produces byte-identical rows to the same plan run in
one uninterrupted pull, which in turn matches the eager tree-walking
evaluator.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import CypherEngine, CypherRuntimeError, PropertyGraph
from repro.graphdb.cypher.iterators import ExecutionContext
from repro.graphdb.cypher.parser import parse
from repro.graphdb.cypher.planner import build_plan


def build_graph() -> PropertyGraph:
    graph = PropertyGraph()
    actors = []
    for i in range(4):
        actors.append(
            graph.create_node("ThreatActor", {"name": f"actor-{i}"})
        )
    techniques = []
    for i in range(6):
        techniques.append(
            graph.create_node("Technique", {"name": f"tech-{i}"})
        )
    for i in range(18):
        node = graph.create_node(
            "Malware", {"name": f"mal-{i:02d}", "year": 2000 + (i % 7)}
        )
        graph.create_edge(
            node.node_id, "ATTRIBUTED_TO", actors[i % len(actors)].node_id
        )
        graph.create_edge(
            node.node_id, "USES", techniques[i % len(techniques)].node_id
        )
        if i % 3 == 0:
            graph.create_edge(
                node.node_id, "CONNECTS_TO", techniques[(i + 1) % 6].node_id
            )
    for actor, tech in zip(actors, techniques):
        graph.create_edge(actor.node_id, "USES", tech.node_id)
    return graph


@pytest.fixture(scope="module")
def graph():
    return build_graph()


@pytest.fixture(scope="module")
def engine(graph):
    return CypherEngine(graph)


# Query shapes covering every physical operator: scans (all/label/
# index), expansions (single and variable-length, both directions),
# filters, projection, aggregation, ORDER BY, DISTINCT, SKIP/LIMIT.
QUERIES = [
    "MATCH (n) RETURN n.name",
    "MATCH (m:Malware) RETURN m.name",
    'MATCH (m:Malware {name: "mal-07"}) RETURN m.year',
    "MATCH (m:Malware) WHERE m.year > 2003 RETURN m.name, m.year",
    "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a:ThreatActor) "
    "RETURN m.name, a.name",
    "MATCH (a:ThreatActor)<-[:ATTRIBUTED_TO]-(m:Malware) "
    'WHERE a.name = "actor-1" RETURN m.name',
    "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t:Technique) "
    "RETURN m.name, t.name",
    "MATCH (m:Malware)-[:CONNECTS_TO*1..2]->(x) RETURN m.name, x.name",
    "MATCH (a:ThreatActor) RETURN a.name, count(a) ORDER BY a.name",
    "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a) "
    "RETURN a.name, count(m), collect(m.name) ORDER BY a.name",
    "MATCH (m:Malware) RETURN avg(m.year), min(m.year), max(m.year), "
    "sum(m.year)",
    "MATCH (m:Malware) RETURN count(DISTINCT m.year)",
    "MATCH (m:Malware) RETURN DISTINCT m.year ORDER BY m.year",
    "MATCH (m:Malware) RETURN m.name ORDER BY m.year DESC, m.name "
    "SKIP 3 LIMIT 5",
    "MATCH (m:Malware), (a:ThreatActor) "
    "RETURN m.name, a.name ORDER BY m.name, a.name LIMIT 7",
]


def values(rows):
    return [row.values for row in rows]


def fingerprint(rows, query):
    """Canonical result fingerprint for eager-vs-preemptable parity.

    With ORDER BY the row sequence is fully determined by the query, so
    the fingerprint is the exact list.  Without it Cypher leaves row
    order unspecified and the cost-based planner may legitimately
    enumerate a join in a different (but set-equal) order than the
    eager evaluator, so the fingerprint is order-insensitive.
    """
    printable = [repr(sorted(row.values.items())) for row in rows]
    if "ORDER BY" in query.upper():
        return printable
    return sorted(printable)


def run_sliced(engine, query, steps_per_slice, roundtrip=True):
    """Run preemptably, suspending every ``steps_per_slice`` ticks.

    Between slices the whole execution state is serialised to JSON and
    reloaded into a brand-new task, which is the strongest version of
    the resume contract (nothing survives in memory).
    """
    context = ExecutionContext(steps_per_slice=steps_per_slice)
    task = engine.task(query, context=context)
    rows = []
    continuation = None
    while True:
        if roundtrip and continuation is not None:
            task = engine.task(
                query, context=ExecutionContext(steps_per_slice=steps_per_slice)
            )
            task.load(json.loads(json.dumps(continuation)))
        rows.extend(task.step())
        continuation = task.save()
        if continuation is None:
            return rows


class TestSliceParity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_single_step_slices_match_unsliced(self, engine, query):
        """Suspending at EVERY safe point changes nothing."""
        unsliced = engine.task(query).run_to_completion()
        sliced = run_sliced(engine, query, steps_per_slice=1)
        assert values(sliced) == values(unsliced)

    @pytest.mark.parametrize("query", QUERIES)
    def test_preemptable_matches_eager(self, engine, query):
        eager = engine.run(query)
        preemptable = engine.task(query).run_to_completion()
        assert fingerprint(preemptable, query) == fingerprint(eager, query)

    @settings(max_examples=40, deadline=None)
    @given(
        query=st.sampled_from(QUERIES),
        steps=st.integers(min_value=1, max_value=23),
    )
    def test_any_slice_size_is_byte_identical(self, query, steps):
        # Fresh engine per example: hypothesis shrinks across examples
        # and module-scoped state must not leak between them.
        engine = CypherEngine(build_graph())
        unsliced = engine.task(query).run_to_completion()
        sliced = run_sliced(engine, query, steps_per_slice=steps)
        assert values(sliced) == values(unsliced)
        assert fingerprint(sliced, query) == fingerprint(
            engine.run(query), query
        )

    def test_pagination_matches_eager_at_many_page_sizes(self, engine):
        query = (
            "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a) "
            "RETURN m.name, a.name ORDER BY m.name"
        )
        eager = values(engine.run(query))
        for page_size in (1, 2, 3, 7, 100):
            rows = []
            continuation = None
            while True:
                page = engine.run_paginated(
                    query, page_size, continuation=continuation
                )
                rows.extend(values(page.rows))
                continuation = page.continuation
                if continuation is None:
                    break
                # the wire format is JSON: round-trip every hop
                continuation = json.loads(json.dumps(continuation))
            assert rows == eager, f"page_size={page_size}"

    def test_continuation_is_json_safe(self, engine):
        task = engine.task(
            "MATCH (m:Malware)-[:USES]->(t) RETURN m.name, t.name",
            context=ExecutionContext(steps_per_slice=2),
        )
        task.step()
        continuation = task.save()
        assert continuation is not None
        json.dumps(continuation)  # must not raise

    def test_stale_plan_continuation_rejected(self, engine):
        task = engine.task(
            "MATCH (m:Malware) RETURN m.name",
            context=ExecutionContext(steps_per_slice=1),
        )
        task.step()
        continuation = task.save()
        other = engine.task("MATCH (a:ThreatActor) RETURN a.name")
        with pytest.raises(CypherRuntimeError, match="does not match"):
            other.load(continuation)


class TestPlanner:
    def plan_lines(self, graph, query):
        plan = build_plan(parse(query), graph)
        return plan.explain_lines()

    def test_indexed_equality_uses_index_scan(self, graph):
        lines = self.plan_lines(
            graph, 'MATCH (m:Malware {name: "mal-03"}) RETURN m'
        )
        assert any("IndexScan" in line for line in lines)
        assert not any("LabelScan" in line for line in lines)

    def test_where_equality_on_indexed_property_uses_index(self, graph):
        lines = self.plan_lines(
            graph, 'MATCH (m:Malware) WHERE m.name = "mal-03" RETURN m'
        )
        assert any("IndexScan" in line for line in lines)

    def test_unindexed_property_falls_back_to_label_scan(self, graph):
        # ``year`` is not in INDEXED_PROPERTIES: no index to use.
        lines = self.plan_lines(
            graph, "MATCH (m:Malware {year: 2003}) RETURN m"
        )
        assert any("LabelScan" in line for line in lines)
        assert not any("IndexScan" in line for line in lines)

    def test_unlabelled_scan_is_all_nodes(self, graph):
        lines = self.plan_lines(graph, "MATCH (n) RETURN n.name")
        assert any("AllNodesScan" in line for line in lines)

    def test_cartesian_join_orders_smaller_side_first(self, graph):
        # 4 ThreatActor vs 18 Malware: the cheaper scan must run first
        # (deeper in the tree), so the expensive side is the outer loop
        # driven once per cheap row -- never the other way round.
        lines = self.plan_lines(
            graph, "MATCH (m:Malware), (a:ThreatActor) RETURN m.name, a.name"
        )
        actor_depth = next(
            line.index("LabelScan") for line in lines if "ThreatActor" in line
        )
        malware_depth = next(
            line.index("LabelScan") for line in lines if "Malware" in line
        )
        assert actor_depth > malware_depth

    def test_disconnected_paths_start_from_cheapest_anchor(self, graph):
        # The indexed single-row anchor is planned before the label scan
        # even though it is written second.
        lines = self.plan_lines(
            graph,
            'MATCH (m:Malware), (a:ThreatActor {name: "actor-2"}) '
            "RETURN m.name, a.name",
        )
        index_at = next(
            i for i, line in enumerate(lines) if "IndexScan" in line
        )
        label_at = next(
            i for i, line in enumerate(lines) if "LabelScan" in line
        )
        # explain is root-first: deeper (earlier-executed) = later line
        assert index_at > label_at

    def test_filter_pushed_below_expansion(self, graph):
        lines = self.plan_lines(
            graph,
            "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a) "
            "WHERE m.year > 2003 RETURN a.name",
        )
        filter_at = next(
            i for i, line in enumerate(lines) if "Filter" in line
        )
        expand_at = next(
            i for i, line in enumerate(lines) if "ExpandEdge" in line
        )
        # root-first listing: pushed-down filter prints after (below)
        # the expansion it feeds.
        assert filter_at > expand_at

    def test_signature_stable_and_structure_sensitive(self, graph):
        q1 = "MATCH (m:Malware) RETURN m.name"
        same = build_plan(parse(q1), graph).signature()
        again = build_plan(parse(q1), graph).signature()
        other = build_plan(
            parse("MATCH (a:ThreatActor) RETURN a.name"), graph
        ).signature()
        assert same == again
        assert same != other

    def test_explain_through_engine(self, engine):
        rows = engine.run("EXPLAIN MATCH (m:Malware) RETURN m.name")
        assert rows and all(set(r.values) == {"plan"} for r in rows)
        assert any("LabelScan" in r["plan"] for r in rows)

    def test_aggregate_in_nested_expression_rejected(self, engine):
        query = "MATCH (m:Malware) RETURN count(m) > 5 AS big"
        with pytest.raises(CypherRuntimeError, match="aggregate"):
            engine.task(query, strict=False)
        # same error surface as the eager evaluator
        with pytest.raises(CypherRuntimeError, match="aggregate"):
            engine.run(query, strict=False)


class TestQuantumAndObs:
    def test_virtual_quantum_suspends_long_scan(self):
        from repro.obs import make_obs
        from repro.runtime.clock import VirtualClock

        clock = VirtualClock()
        obs = make_obs(clock)
        engine = CypherEngine(build_graph(), obs=obs)
        context = ExecutionContext(clock=clock, quantum=0.005, step_cost=0.001)
        task = engine.task("MATCH (n) RETURN n.name", context=context)
        rows = task.run_to_completion()
        assert values(rows) == values(engine.run("MATCH (n) RETURN n.name"))
        counters = obs.metrics.snapshot()["counters"]
        assert sum(counters["cypher.slices"].values()) > 1
        assert sum(counters["cypher.suspended"].values()) >= 1
        names = {span["name"] for span in obs.tracer.export()}
        assert "cypher.plan" in names
        assert "cypher.slice" in names
