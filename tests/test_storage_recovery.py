"""System-level crash/recovery tests for the unified storage engine.

The crash matrix kills a full SecurityKG deployment at every registered
crash point, reopens the state directory, resumes, and asserts the
graph, search index, crawl state and SQL mirror all converge to the
contents of an uninterrupted run -- zero lost reports, zero duplicated
ingests.  Everything runs on the virtual clock so the workloads are
deterministic; crawl timestamps are the one store excluded from the
fingerprint (a resumed run's virtual clock legitimately restarts, so
``last_crawl`` differs while every other byte converges).
"""

import json
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.storage import CRASH_POINTS, CrashInjector, InjectedCrash

WORKLOAD = dict(
    scenario_count=6,
    reports_per_site=2,
    sources=["ThreatPedia", "MalwareBulletin"],
    connectors=["graph", "search", "sql"],
    clock="virtual",
    seed=7,
)


def make_kg(path, faults=None, **overrides):
    config = SystemConfig(storage_path=str(path), **{**WORKLOAD, **overrides})
    return SecurityKG(config, faults=faults)


def _node_key(graph, node_id):
    node = graph.node(node_id)
    return (
        node.label,
        str(node.properties.get("merge_key", node.properties.get("name", ""))),
    )


def _normalize_props(props):
    out = dict(props)
    if isinstance(out.get("reports"), list):
        out["reports"] = sorted(out["reports"])
    return json.dumps(out, sort_keys=True)


def fingerprint(kg):
    """Node-id-free contents of every store (crawl timestamps excluded)."""
    graph = kg.graph
    nodes = sorted(
        (n.label, _normalize_props(n.properties)) for n in graph.nodes()
    )
    edges = sorted(
        (
            _node_key(graph, e.src),
            e.type,
            _node_key(graph, e.dst),
            _normalize_props(e.properties),
        )
        for e in graph.edges()
    )
    search_docs = {
        doc_id: dict(fields)
        for doc_id, fields in kg.connectors["search"].index.to_state()[
            "documents"
        ].items()
    }
    seen = sorted(kg.engine.participant("crawl").seen)
    conn = kg.connectors["sql"].connection
    sql_entities = sorted(
        conn.execute(
            "SELECT label, merge_key, name, attributes FROM entities"
        ).fetchall()
    )
    sql_relations = sorted(
        conn.execute(
            "SELECT e1.label, e1.merge_key, r.type, e2.label, e2.merge_key, "
            "r.weight FROM relations r "
            "JOIN entities e1 ON r.head = e1.id "
            "JOIN entities e2 ON r.tail = e2.id"
        ).fetchall()
    )
    sql_reports = sorted(
        conn.execute(
            "SELECT report_id, source, url, title FROM reports"
        ).fetchall()
    )
    return {
        "nodes": nodes,
        "edges": edges,
        "search": search_docs,
        "seen": seen,
        "sql_entities": sql_entities,
        "sql_relations": sql_relations,
        "sql_reports": sql_reports,
        "ingested": kg.engine.ingested_ids(),
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Fingerprint of one uninterrupted run (shared by the matrix)."""
    path = tmp_path_factory.mktemp("reference") / "state"
    kg = make_kg(path)
    report = kg.run_once()
    kg.checkpoint()
    result = (fingerprint(kg), report.reports_stored)
    kg.close()
    return result


class TestCrashMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_kill_reopen_converges(self, tmp_path, reference, point):
        expected, expected_stored = reference
        assert expected_stored > 0

        path = tmp_path / "state"
        kg = make_kg(path, faults=CrashInjector(point))
        try:
            kg.run_once()
            kg.checkpoint()
        except InjectedCrash as crash:
            assert crash.point == point
        else:
            pytest.fail(f"workload never reached crash point {point!r}")

        # the crashed process is gone; a fresh deployment recovers from
        # disk, re-crawls whatever was not durably stored, and skips
        # whatever was
        resumed = make_kg(path)
        report = resumed.run_once()
        resumed.checkpoint()
        assert fingerprint(resumed) == expected
        # exactly-once: every report marked exactly once, and a report
        # whose commit survived was never re-crawled (its seen-URL delta
        # is durable iff its ingest marker is)
        assert resumed.engine.ingested_count == expected_stored
        assert report.reports_skipped == 0
        resumed.close()

        # and the converged state is itself durable
        reloaded = make_kg(path)
        assert fingerprint(reloaded) == expected
        reloaded.close()

    @pytest.mark.parametrize("at_hit", [2, 3])
    def test_mid_batch_commit_crash(self, tmp_path, reference, at_hit):
        """Dying on a later commit leaves a prefix stored; the resumed
        run ingests only the remainder."""
        expected, expected_stored = reference
        path = tmp_path / "state"
        kg = make_kg(
            path, faults=CrashInjector("commit.after-fsync", at_hit=at_hit)
        )
        with pytest.raises(InjectedCrash):
            kg.run_once()
            kg.checkpoint()

        survivor = make_kg(path)
        already = survivor.engine.ingested_count
        assert 0 < already < expected_stored
        report = survivor.run_once()
        survivor.checkpoint()
        assert report.reports_skipped == 0  # durable URLs were not re-crawled
        assert report.reports_stored == expected_stored - already
        assert fingerprint(survivor) == expected
        survivor.close()


class TestGraphSQLParity:
    """Extends E14: the two backends stay node/row-comparable even when
    runs are chopped up by randomly seeded crashes."""

    @given(seed=st.integers(0, 9999))
    @settings(max_examples=8, deadline=None)
    def test_parity_after_seeded_crash(self, seed):
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/state"
            kg = make_kg(
                path,
                faults=CrashInjector.seeded(seed),
                scenario_count=4,
                reports_per_site=1,
                sources=["ThreatPedia"],
            )
            try:
                kg.run_once()
                kg.checkpoint()
                kg.close()
            except InjectedCrash:
                kg = make_kg(
                    path,
                    scenario_count=4,
                    reports_per_site=1,
                    sources=["ThreatPedia"],
                )
                kg.run_once()
                kg.checkpoint()
                kg.close()

            final = make_kg(
                path,
                scenario_count=4,
                reports_per_site=1,
                sources=["ThreatPedia"],
            )
            sql = final.connectors["sql"]
            assert sql.entity_count() == final.graph.node_count
            assert sql.relation_count() == final.graph.edge_count
            assert sql.label_counts() == final.graph.label_counts()
            report_rows = sql.connection.execute(
                "SELECT report_id FROM reports"
            ).fetchall()
            # one row per ingest marker: no lost or duplicated reports
            assert sorted(r[0] for r in report_rows) == final.engine.ingested_ids()
            final.close()
