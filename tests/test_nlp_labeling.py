"""Unit tests for gazetteers, labeling functions and the label model."""

from repro.nlp.gazetteer import Gazetteer
from repro.nlp.labeling import (
    LabelModel,
    NamedLF,
    cue_actor_lf,
    cue_malware_lf,
    default_labeling_functions,
    make_gazetteer_lf,
    synthesize_corpus,
)
from repro.nlp.tokenize import tokenize_words
from repro.ontology import EntityType


class TestGazetteer:
    GAZ = Gazetteer.from_lists(
        {
            EntityType.MALWARE: ["wannacry", "agent tesla"],
            EntityType.TOOL: ["mimikatz"],
            EntityType.THREAT_ACTOR: ["cozy bear"],
        }
    )

    def test_single_token_match(self):
        assert self.GAZ.match(["found", "wannacry", "here"]) == [
            (1, 2, EntityType.MALWARE)
        ]

    def test_multi_token_longest_match(self):
        matches = self.GAZ.match(["the", "agent", "tesla", "stealer"])
        assert matches == [(1, 3, EntityType.MALWARE)]

    def test_case_insensitive(self):
        assert self.GAZ.match(["WannaCry"]) == [(0, 1, EntityType.MALWARE)]

    def test_no_overlapping_matches(self):
        matches = self.GAZ.match(["cozy", "bear", "mimikatz"])
        assert [(m[0], m[1]) for m in matches] == [(0, 2), (2, 3)]

    def test_contains(self):
        assert self.GAZ.contains("Agent Tesla", EntityType.MALWARE)
        assert not self.GAZ.contains("emotet", EntityType.MALWARE)

    def test_default_loads_all_types(self):
        gaz = Gazetteer.load_default()
        for entity_type in (
            EntityType.MALWARE,
            EntityType.THREAT_ACTOR,
            EntityType.TECHNIQUE,
            EntityType.TOOL,
            EntityType.SOFTWARE,
        ):
            assert gaz.entries[entity_type], entity_type


class TestCueLFs:
    def test_malware_type_word_cue(self):
        tokens = tokenize_words("The zephyrlock ransomware spread fast")
        proposals = cue_malware_lf(tokens)
        assert any(
            p[2] == EntityType.MALWARE and "zephyrlock" in " ".join(
                t.text for t in tokens[p[0] : p[1]]
            )
            for p in proposals
        )

    def test_actor_intro_cue(self):
        tokens = tokenize_words("The threat actor crimson fox uses tools")
        proposals = cue_actor_lf(tokens)
        texts = {
            " ".join(t.text for t in tokens[p[0] : p[1]]) for p in proposals
        }
        assert "crimson fox" in texts

    def test_actor_cue_stops_at_verb(self):
        tokens = tokenize_words("attributed to crimson fox based on overlap")
        proposals = cue_actor_lf(tokens)
        for start, end, _t in proposals:
            span = " ".join(t.text for t in tokens[start:end])
            assert "based" not in span

    def test_no_cue_in_plain_text(self):
        tokens = tokenize_words("Apply updates and keep backups offline")
        assert cue_malware_lf(tokens) == []
        assert cue_actor_lf(tokens) == []


class TestLabelModel:
    def test_conflicting_lfs_resolved_by_accuracy(self):
        good = NamedLF(
            "good", lambda toks: [(0, 1, EntityType.MALWARE)] if toks else []
        )
        # 'bad' fires on the same token with a different type but
        # disagrees with two corroborating functions.
        bad = NamedLF("bad", lambda toks: [(0, 1, EntityType.TOOL)] if toks else [])
        good2 = NamedLF(
            "good2", lambda toks: [(0, 1, EntityType.MALWARE)] if toks else []
        )
        sentences = [tokenize_words("emotet spreads")] * 10
        result = LabelModel().fit_predict(sentences, [good, bad, good2])
        assert result.lf_accuracies["good"] > result.lf_accuracies["bad"]
        assert result.labels[0][0] == "B-Malware"

    def test_bio_continuity(self):
        gaz = Gazetteer.from_lists({EntityType.MALWARE: ["agent tesla"]})
        lf = make_gazetteer_lf(gaz, EntityType.MALWARE)
        sentences = [tokenize_words("agent tesla struck again")]
        result = LabelModel().fit_predict(sentences, [lf])
        assert result.labels[0][:2] == ["B-Malware", "I-Malware"]
        assert result.labels[0][2] == "O"

    def test_coverage_reported(self):
        sentences = [tokenize_words("wannacry hit hospitals")]
        _corpus, result = synthesize_corpus(sentences)
        assert 0 < result.coverage <= 1

    def test_unlabeled_tokens_stay_o(self):
        sentences = [tokenize_words("nothing suspicious here at all")]
        corpus, _r = synthesize_corpus(sentences)
        assert corpus[0][1] == ["O"] * len(corpus[0][0])

    def test_default_lfs_have_unique_names(self):
        lfs = default_labeling_functions()
        names = [lf.name for lf in lfs]
        assert len(names) == len(set(names))
