"""Property-based invariant tests across the core data structures."""

import random as stdlib_random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Pipeline, Stage
from repro.fusion import KnowledgeFusion
from repro.graphdb import CypherEngine, PropertyGraph
from repro.nlp.tokenize import tokenize_sentences
from repro.search import SearchIndex, analyze
from repro.websim.scenario import generate_report_content, make_scenarios


# ---------------------------------------------------------------------------
# graph store: random operation sequences keep every index consistent


class GraphModel:
    """Apply random ops to the store and a naive reference model."""

    def __init__(self):
        self.graph = PropertyGraph()
        self.nodes: dict[int, tuple[str, str]] = {}  # id -> (label, name)
        self.edges: dict[int, tuple[int, str, int]] = {}

    def apply(self, op, rng):
        kind = op[0]
        if kind == "add_node":
            label, name = op[1], op[2]
            node = self.graph.create_node(label, {"name": name})
            self.nodes[node.node_id] = (label, name)
        elif kind == "add_edge" and len(self.nodes) >= 2:
            src, dst = rng.sample(sorted(self.nodes), 2)
            edge = self.graph.create_edge(src, op[1], dst)
            self.edges[edge.edge_id] = (src, op[1], dst)
        elif kind == "rename" and self.nodes:
            node_id = rng.choice(sorted(self.nodes))
            label, _old = self.nodes[node_id]
            self.graph.set_node_properties(node_id, {"name": op[1]})
            self.nodes[node_id] = (label, op[1])
        elif kind == "del_edge" and self.edges:
            edge_id = rng.choice(sorted(self.edges))
            self.graph.delete_edge(edge_id)
            del self.edges[edge_id]
        elif kind == "del_node" and self.nodes:
            node_id = rng.choice(sorted(self.nodes))
            self.graph.delete_node(node_id)
            del self.nodes[node_id]
            self.edges = {
                eid: e
                for eid, e in self.edges.items()
                if e[0] != node_id and e[2] != node_id
            }

    def check(self):
        graph = self.graph
        assert graph.node_count == len(self.nodes)
        assert graph.edge_count == len(self.edges)
        # label index agrees
        expected_labels: dict[str, int] = {}
        for label, _name in self.nodes.values():
            expected_labels[label] = expected_labels.get(label, 0) + 1
        assert graph.label_counts() == expected_labels
        # adjacency symmetric
        for edge in graph.edges():
            assert edge.edge_id in {e.edge_id for e in graph.out_edges(edge.src)}
            assert edge.edge_id in {e.edge_id for e in graph.in_edges(edge.dst)}
        # property index: find by name returns exactly the right nodes
        for node_id, (label, name) in self.nodes.items():
            found = {n.node_id for n in graph.find_nodes(label, name=name)}
            expected = {
                nid
                for nid, (l2, n2) in self.nodes.items()
                if l2 == label and n2 == name
            }
            assert found == expected, (node_id, name)


_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("add_node"),
            st.sampled_from(["A", "B", "C"]),
            st.text(alphabet="xyz", min_size=1, max_size=4),
        ),
        st.tuples(st.just("add_edge"), st.sampled_from(["R", "S"])),
        st.tuples(st.just("rename"), st.text(alphabet="pq", min_size=1, max_size=4)),
        st.tuples(st.just("del_edge")),
        st.tuples(st.just("del_node")),
    ),
    max_size=40,
)


class TestGraphStoreInvariants:
    @given(ops=_OPS, seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_random_op_sequences_keep_indexes_consistent(self, ops, seed):
        rng = stdlib_random.Random(seed)
        model = GraphModel()
        for op in ops:
            model.apply(op, rng)
        model.check()


# ---------------------------------------------------------------------------
# cypher: results agree with a reference evaluation over the same graph


class TestCypherAgainstReference:
    @given(
        names=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=3),
            min_size=1,
            max_size=12,
        ),
        needle=st.text(alphabet="abc", min_size=1, max_size=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_contains_filter_matches_python(self, names, needle):
        graph = PropertyGraph()
        for name in names:
            graph.create_node("N", {"name": name})
        engine = CypherEngine(graph)
        rows = engine.run(
            f'MATCH (n:N) WHERE n.name CONTAINS "{needle}" RETURN n.name'
        )
        got = sorted(r["n.name"] for r in rows)
        expected = sorted(n for n in names if needle in n)
        assert got == expected

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_count_matches_edge_count(self, edges):
        graph = PropertyGraph()
        ids = [graph.create_node("N", {"name": str(i)}).node_id for i in range(7)]
        for src, dst in edges:
            graph.create_edge(ids[src], "R", ids[dst])
        engine = CypherEngine(graph)
        rows = engine.run("MATCH (a)-[r:R]->(b) RETURN count(r) AS c")
        assert rows[0]["c"] == len(edges)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_var_length_agrees_with_bfs(self, edges):
        graph = PropertyGraph()
        ids = [graph.create_node("N", {"name": str(i)}).node_id for i in range(6)]
        adj: dict[int, set[int]] = {i: set() for i in range(6)}
        for src, dst in edges:
            graph.create_edge(ids[src], "R", ids[dst])
            adj[src].add(dst)
        engine = CypherEngine(graph)
        rows = engine.run(
            'MATCH (a:N {name: "0"})-[:R*1..3]->(x) RETURN x.name'
        )
        got = sorted(r["x.name"] for r in rows)
        # reference BFS (node-distinct, depths 1..3, excluding start at depth 0)
        reached: set[int] = set()
        frontier = {0}
        seen = {0}
        for _ in range(3):
            frontier = {
                n for cur in frontier for n in adj[cur] if n not in seen
            }
            seen |= frontier
            reached |= frontier
        assert got == sorted(str(n) for n in reached)


# ---------------------------------------------------------------------------
# pipeline: outputs equal the sequential reference for arbitrary filters


class TestPipelineEquivalence:
    @given(
        items=st.lists(st.integers(-50, 50), max_size=60),
        modulus=st.integers(2, 5),
        workers=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_equals_sequential(self, items, modulus, workers):
        pipeline = Pipeline(
            [
                Stage("filter", lambda x: x if x % modulus == 0 else None,
                      workers=workers),
                Stage("scale", lambda x: x * 3, workers=workers),
            ]
        )
        result = pipeline.run(list(items))
        expected = sorted(x * 3 for x in items if x % modulus == 0)
        assert sorted(result.outputs) == expected


# ---------------------------------------------------------------------------
# search: indexed documents are findable; removed ones are not


class TestSearchInvariants:
    @given(
        docs=st.dictionaries(
            st.text(alphabet="dk", min_size=1, max_size=3),
            st.text(alphabet="abcdef gh", min_size=1, max_size=25),
            max_size=8,
        ),
        drop=st.integers(0, 7),
    )
    @settings(max_examples=40, deadline=None)
    def test_remove_is_complete(self, docs, drop):
        index = SearchIndex()
        for doc_id, body in docs.items():
            index.add(doc_id, {"body": body})
        doc_ids = sorted(docs)
        if doc_ids:
            victim = doc_ids[drop % len(doc_ids)]
            index.remove(victim)
            for term in set(analyze(docs[victim])):
                assert all(
                    h.doc_id != victim for h in index.search(term, limit=20)
                )
        assert index.doc_count == max(0, len(docs) - (1 if docs else 0))


# ---------------------------------------------------------------------------
# fusion: never merges across labels; node count never increases


class TestFusionInvariants:
    @given(
        names=st.lists(
            st.sampled_from(
                ["agent tesla", "AgentTesla", "agent_tesla", "emotet",
                 "Emotet-2", "trickbot"]
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fusion_monotone_and_label_safe(self, names):
        graph = PropertyGraph()
        for i, name in enumerate(names):
            label = "Malware" if i % 2 == 0 else "Tool"
            graph.create_node(label, {"name": name, "merge_key": name.lower()})
        before_labels = set(graph.label_counts())
        before = graph.node_count
        report = KnowledgeFusion().run(graph)
        assert graph.node_count <= before
        assert set(graph.label_counts()) <= before_labels
        assert report.nodes_after == graph.node_count
        # merged groups never mix labels
        for group in report.merged_groups:
            assert len(group) >= 2


# ---------------------------------------------------------------------------
# corpus generator: every gold mention survives tokenization intact


class TestCorpusTokenizationContract:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_gold_mentions_recoverable_from_tokens(self, seed):
        scenario = make_scenarios(1, seed=seed)[0]
        content = generate_report_content(
            scenario, stdlib_random.Random(seed), sentence_count=6
        )
        for gold_sentence in content.truth.sentences:
            sentences = tokenize_sentences(gold_sentence.text)
            token_texts = [
                t.text for s in sentences for t in s.tokens
            ]
            joined = " ".join(token_texts)
            for mention in gold_sentence.mentions:
                normalised = " ".join(mention.text.split())
                assert normalised in joined or mention.text in token_texts, (
                    mention.text,
                    token_texts,
                )
