"""Tests for the unified transactional storage engine."""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    CRASH_POINTS,
    CrashInjector,
    InjectedCrash,
    StorageEngine,
    StorageError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class KVParticipant:
    """Minimal participant: a dict with set/del ops."""

    name = "kv"

    def __init__(self):
        self.data = {}

    def apply(self, ops):
        for op in ops:
            if op["op"] == "set":
                self.data[op["k"]] = op["v"]
            elif op["op"] == "del":
                self.data.pop(op["k"], None)
            else:
                raise ValueError(op["op"])
        return len(ops)

    def snapshot_data(self):
        return dict(self.data)

    def load_snapshot(self, data):
        self.data = dict(data)

    def reset(self):
        self.data = {}


def open_engine(path, faults=None):
    return StorageEngine(path, [KVParticipant()], faults=faults, fsync=False)


def kv(engine):
    return engine.participant("kv").data


class TestAtomicWrite:
    def test_replaces_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_bytes_and_json(self, tmp_path):
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"
        atomic_write_json(tmp_path / "p.json", {"a": [1, 2]})
        assert json.loads((tmp_path / "p.json").read_text()) == {"a": [1, 2]}

    def test_dotted_names_do_not_collide(self, tmp_path):
        # with_suffix(".tmp") would map both of these onto "state.tmp";
        # the helper appends to the full filename instead
        a, b = tmp_path / "state.json", tmp_path / "state.yaml"
        atomic_write_text(a, "json")
        atomic_write_text(b, "yaml")
        assert a.read_text() == "json" and b.read_text() == "yaml"

    def test_no_fsync_mode(self, tmp_path):
        atomic_write_text(tmp_path / "x", "ok", fsync=False)
        assert (tmp_path / "x").read_text() == "ok"


class TestCrashInjector:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            CrashInjector("no-such-point")

    def test_fires_on_nth_hit(self):
        injector = CrashInjector("commit.after-append", at_hit=3)
        assert not injector.fire("commit.after-append")
        assert not injector.fire("commit.before-append")
        assert not injector.fire("commit.after-append")
        assert injector.fire("commit.after-append")
        assert injector.fired
        # once fired, never again
        assert not injector.fire("commit.after-append")

    def test_seeded_is_deterministic(self):
        a, b = CrashInjector.seeded(42), CrashInjector.seeded(42)
        assert (a.point, a.at_hit) == (b.point, b.at_hit)
        assert a.point in CRASH_POINTS


class TestEngineBasics:
    def test_commit_and_reopen(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        engine.log("kv", [{"op": "set", "k": "b", "v": 2}])
        engine.close()
        reopened = open_engine(tmp_path / "s")
        assert kv(reopened) == {"a": 1, "b": 2}
        assert reopened.last_seq == 2

    def test_log_returns_apply_result(self, tmp_path):
        engine = open_engine(None)
        assert engine.log("kv", [{"op": "set", "k": "a", "v": 1}]) == 1

    def test_transaction_is_one_journal_record(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        with engine.transaction() as tx:
            engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
            engine.log("kv", [{"op": "set", "k": "b", "v": 2}])
            tx.mark_ingested("rpt-1")
        lines = engine.journal_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["marks"] == ["rpt-1"]
        assert len(record["ops"]["kv"]) == 2
        assert engine.is_ingested("rpt-1")
        assert not engine.is_ingested("rpt-2")

    def test_transactions_do_not_nest(self):
        engine = open_engine(None)
        with pytest.raises(StorageError):
            with engine.transaction():
                with engine.transaction():
                    pass

    def test_ordinary_exception_still_commits_applied_ops(self, tmp_path):
        # memory was already mutated inside the block; committing keeps
        # disk and memory in agreement (redo-log semantics)
        engine = open_engine(tmp_path / "s")
        with pytest.raises(RuntimeError):
            with engine.transaction():
                engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
                raise RuntimeError("boom")
        engine.close()
        assert kv(open_engine(tmp_path / "s")) == {"a": 1}

    def test_unknown_participant_rejected(self):
        engine = open_engine(None)
        with pytest.raises(StorageError, match="no participant"):
            engine.log("nope", [])

    def test_duplicate_participant_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="duplicate"):
            StorageEngine(None, [KVParticipant(), KVParticipant()])

    def test_closed_engine_rejects_ops(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.close()
        with pytest.raises(StorageError):
            engine.log("kv", [{"op": "set", "k": "a", "v": 1}])

    def test_in_memory_engine_full_api(self):
        engine = open_engine(None)
        with engine.transaction() as tx:
            engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
            tx.mark_ingested("r")
        engine.checkpoint()
        assert kv(engine) == {"a": 1}
        assert engine.is_ingested("r")
        assert engine.journal_path is None


class TestStagedOps:
    def test_staged_applies_immediately_but_defers_durability(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.stage("kv", {"op": "set", "k": "a", "v": 1}, key="a")
        assert kv(engine) == {"a": 1}
        assert engine.journal_path.read_text() == ""
        reopened = open_engine(tmp_path / "s")  # simulated crash
        assert kv(reopened) == {}

    def test_adopt_staged_commits_with_transaction(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.stage("kv", {"op": "set", "k": "a", "v": 1}, key="a")
        engine.stage("kv", {"op": "set", "k": "b", "v": 2}, key="b")
        with engine.transaction() as tx:
            assert tx.adopt_staged("kv", ["a"]) == 1
        assert engine.staged_count == 1  # "b" still pending
        reopened = open_engine(tmp_path / "s")
        assert kv(reopened) == {"a": 1}

    def test_adopt_staged_tolerates_unknown_participant(self):
        engine = open_engine(None)
        with engine.transaction() as tx:
            assert tx.adopt_staged("crawl", ["x"]) == 0

    def test_flush_commits_backlog(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.stage("kv", {"op": "set", "k": "a", "v": 1}, key="a")
        engine.stage("kv", {"op": "set", "k": "b", "v": 2})
        engine.flush()
        assert engine.staged_count == 0
        assert kv(open_engine(tmp_path / "s")) == {"a": 1, "b": 2}

    def test_unstage_drops_pending_op(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.stage("kv", {"op": "set", "k": "a", "v": 1}, key="a")
        assert engine.unstage("kv", "a")
        assert not engine.unstage("kv", "a")
        engine.flush()
        assert open_engine(tmp_path / "s").journal_path.read_text() == ""

    def test_close_flushes_staged(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.stage("kv", {"op": "set", "k": "a", "v": 1}, key="a")
        engine.close()
        assert kv(open_engine(tmp_path / "s")) == {"a": 1}


class TestCheckpoint:
    def test_checkpoint_starts_new_generation(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        engine.checkpoint()
        assert engine.generation == 2
        assert engine.journal_path.read_text() == ""
        engine.log("kv", [{"op": "set", "k": "b", "v": 2}])
        engine.close()
        reopened = open_engine(tmp_path / "s")
        assert kv(reopened) == {"a": 1, "b": 2}

    def test_checkpoint_sweeps_stale_generations(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        engine.checkpoint()
        engine.checkpoint()
        names = sorted(p.name for p in (tmp_path / "s").iterdir())
        assert names == ["MANIFEST", "journal-000003.jsonl", "snapshot-000003.json"]

    def test_markers_survive_checkpoint(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        with engine.transaction() as tx:
            engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
            tx.mark_ingested("rpt-9")
        engine.checkpoint()
        engine.close()
        assert open_engine(tmp_path / "s").is_ingested("rpt-9")


class TestRecovery:
    def test_torn_final_line_truncated(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        journal = engine.journal_path
        engine.close()
        with journal.open("a") as handle:
            handle.write('{"seq": 2, "ops": {"kv": [[{"op": "se')
        reopened = open_engine(tmp_path / "s")
        assert kv(reopened) == {"a": 1}
        # tail was truncated: the journal ends at the last good record
        reopened.log("kv", [{"op": "set", "k": "b", "v": 2}])
        reopened.close()
        assert kv(open_engine(tmp_path / "s")) == {"a": 1, "b": 2}

    def test_unterminated_tail_without_newline_truncated(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        journal = engine.journal_path
        engine.close()
        # valid JSON but no newline: the append never completed
        with journal.open("a") as handle:
            handle.write('{"seq": 2, "ops": {}, "marks": []}')
        assert kv(open_engine(tmp_path / "s")) == {"a": 1}

    def test_snapshot_with_unknown_participant_rejected(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        engine.checkpoint()
        engine.close()
        with pytest.raises(StorageError, match="unknown participant"):
            StorageEngine(tmp_path / "s", [], fsync=False)

    def test_leftover_tmp_files_removed(self, tmp_path):
        engine = open_engine(tmp_path / "s")
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        engine.close()
        (tmp_path / "s" / "MANIFEST.tmp").write_text("{half")
        reopened = open_engine(tmp_path / "s")
        assert not (tmp_path / "s" / "MANIFEST.tmp").exists()
        assert kv(reopened) == {"a": 1}


class TestCommitCrashPoints:
    @pytest.mark.parametrize(
        "point", ["commit.before-append", "commit.torn-append"]
    )
    def test_crash_before_durable_loses_only_that_commit(self, tmp_path, point):
        engine = open_engine(tmp_path / "s", faults=CrashInjector(point, at_hit=2))
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        with pytest.raises(InjectedCrash):
            engine.log("kv", [{"op": "set", "k": "b", "v": 2}])
        reopened = open_engine(tmp_path / "s")
        assert kv(reopened) == {"a": 1}
        assert reopened.last_seq == 1

    @pytest.mark.parametrize(
        "point", ["commit.after-append", "commit.after-fsync"]
    )
    def test_crash_after_append_keeps_the_commit(self, tmp_path, point):
        engine = open_engine(tmp_path / "s", faults=CrashInjector(point))
        with pytest.raises(InjectedCrash):
            engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        assert kv(open_engine(tmp_path / "s")) == {"a": 1}

    def test_poisoned_engine_rejects_further_use(self, tmp_path):
        engine = open_engine(
            tmp_path / "s", faults=CrashInjector("commit.before-append")
        )
        with pytest.raises(InjectedCrash):
            engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        with pytest.raises(StorageError, match="crashed"):
            engine.log("kv", [{"op": "set", "k": "b", "v": 2}])
        with pytest.raises(StorageError, match="crashed"):
            engine.checkpoint()
        engine.close()  # close after crash must not flush anything
        assert kv(open_engine(tmp_path / "s")) == {}


class TestCheckpointCrashPoints:
    @pytest.mark.parametrize(
        "point",
        [p for p in CRASH_POINTS if p.startswith("checkpoint.")],
    )
    def test_checkpoint_crash_never_loses_committed_data(self, tmp_path, point):
        engine = open_engine(tmp_path / "s", faults=CrashInjector(point))
        engine.log("kv", [{"op": "set", "k": "a", "v": 1}])
        engine.log("kv", [{"op": "set", "k": "b", "v": 2}])
        with pytest.raises(InjectedCrash):
            engine.checkpoint()
        reopened = open_engine(tmp_path / "s")
        assert kv(reopened) == {"a": 1, "b": 2}
        # the survivor is fully usable: commit and checkpoint again
        reopened.log("kv", [{"op": "set", "k": "c", "v": 3}])
        reopened.checkpoint()
        reopened.close()
        assert kv(open_engine(tmp_path / "s")) == {"a": 1, "b": 2, "c": 3}


class TestConcurrency:
    def test_parallel_writers_serialise_cleanly(self, tmp_path):
        engine = open_engine(tmp_path / "s")

        def writer(worker):
            for i in range(25):
                with engine.lock:
                    with engine.transaction():
                        engine.log(
                            "kv", [{"op": "set", "k": f"{worker}-{i}", "v": i}]
                        )

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        engine.close()
        assert len(kv(open_engine(tmp_path / "s"))) == 100


OPS = st.lists(
    st.tuples(st.sampled_from("abcd"), st.integers(0, 99)),
    min_size=0,
    max_size=6,
).map(lambda kvs: [{"op": "set", "k": k, "v": v} for k, v in kvs])


class TestReplayIdempotence:
    @given(
        batches=st.lists(OPS, min_size=1, max_size=10),
        prefix_fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_prefix_then_full_equals_once(self, batches, prefix_fraction):
        records = [
            {"seq": i + 1, "ops": {"kv": [batch]}, "marks": [f"m{i}"]}
            for i, batch in enumerate(batches)
        ]
        prefix = records[: int(len(records) * prefix_fraction)]

        once = StorageEngine(None, [KVParticipant()])
        once.replay_records(records)

        twice = StorageEngine(None, [KVParticipant()])
        twice.replay_records(prefix)
        twice.replay_records(records)  # prefix records must be skipped

        assert kv(twice) == kv(once)
        assert twice.last_seq == once.last_seq
        assert twice.ingested_count == once.ingested_count
