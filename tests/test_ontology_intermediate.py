"""Unit tests for the intermediate representations and refactoring."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ontology import (
    CTIRecord,
    EntityType,
    Mention,
    RelationMention,
    RelationType,
    ReportRecord,
    check_relation,
    refactor_record,
    refactor_records,
)


def make_record(**overrides):
    base = dict(
        report_id="r-1",
        source="ThreatPedia",
        url="https://threatpedia.example/threats/x",
        title="WannaCry analysis",
        vendor="Arcane Labs",
        report_category="malware",
        summary="The wannacry ransomware dropped tasksche.exe on hosts.",
    )
    base.update(overrides)
    return CTIRecord(**base)


class TestReportRecord:
    def test_round_trip_json(self):
        record = ReportRecord(
            report_id="a",
            source="s",
            url="u",
            title="t",
            pages=["<html>1</html>", "<html>2</html>"],
            fetched_at=12.5,
            metadata={"index": 3},
        )
        assert ReportRecord.from_json(record.to_json()) == record

    def test_html_concatenates_pages(self):
        record = ReportRecord("a", "s", "u", pages=["<p>x</p>", "<p>y</p>"])
        assert record.html == "<p>x</p>\n<p>y</p>"


class TestCTIRecord:
    def test_round_trip_json(self):
        record = make_record()
        record.sections = [("Overview", "text one"), ("Impact", "text two")]
        record.structured_fields = {"Severity": "high"}
        record.add_ioc(EntityType.IP, "10.0.0.1")
        record.mentions.append(Mention("wannacry", EntityType.MALWARE, 0, 4, 12))
        record.relations.append(
            RelationMention(
                "wannacry",
                EntityType.MALWARE,
                "dropped",
                "tasksche.exe",
                EntityType.FILE_NAME,
                sentence="it dropped it",
            )
        )
        assert CTIRecord.from_json(record.to_json()) == record

    def test_add_ioc_deduplicates(self):
        record = make_record()
        record.add_ioc(EntityType.IP, "10.0.0.1")
        record.add_ioc(EntityType.IP, "10.0.0.1")
        record.add_ioc(EntityType.IP, "10.0.0.2")
        assert record.ioc_values(EntityType.IP) == ["10.0.0.1", "10.0.0.2"]

    def test_text_joins_summary_and_sections(self):
        record = make_record(summary="s.")
        record.sections = [("H", "body.")]
        assert record.text == "s.\nbody."

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_round_trip_property(self, title, summary):
        record = make_record(title=title, summary=summary)
        assert CTIRecord.from_dict(record.to_dict()) == record


class TestRefactor:
    def test_report_entity_typed_by_category(self):
        delta = refactor_record(make_record(report_category="vulnerability"))
        assert delta.entities[0].type == EntityType.VULNERABILITY_REPORT

    def test_unknown_category_defaults_to_attack(self):
        delta = refactor_record(make_record(report_category=""))
        assert delta.entities[0].type == EntityType.ATTACK_REPORT

    def test_vendor_edge_created(self):
        delta = refactor_record(make_record())
        created_by = [r for r in delta.relations if r.type == RelationType.CREATED_BY]
        assert len(created_by) == 1
        assert created_by[0].tail.name == "Arcane Labs"

    def test_iocs_become_entities_with_mentions(self):
        record = make_record()
        record.add_ioc(EntityType.IP, "10.0.0.1")
        record.add_ioc(EntityType.HASH, "ab" * 16)
        delta = refactor_record(record)
        ioc_entities = [e for e in delta.entities if e.type.is_ioc]
        assert {e.name for e in ioc_entities} == {"10.0.0.1", "ab" * 16}
        mention_edges = [r for r in delta.relations if r.type == RelationType.MENTIONS]
        assert {r.tail.name for r in mention_edges} >= {"10.0.0.1", "ab" * 16}

    def test_malware_mention_gets_describes_edge(self):
        record = make_record()
        record.mentions.append(Mention("wannacry", EntityType.MALWARE))
        delta = refactor_record(record)
        describes = [r for r in delta.relations if r.type == RelationType.DESCRIBES]
        assert [r.tail.name for r in describes] == ["wannacry"]

    def test_relation_mentions_validated_and_normalised(self):
        record = make_record()
        record.relations.append(
            RelationMention(
                "wannacry",
                EntityType.MALWARE,
                "dropped",
                "tasksche.exe",
                EntityType.FILE_NAME,
            )
        )
        delta = refactor_record(record)
        drops = [r for r in delta.relations if r.type == RelationType.DROPS]
        assert len(drops) == 1
        assert drops[0].attributes["verb"] == "dropped"
        assert all(check_relation(r) is None for r in delta.relations)

    def test_duplicate_mentions_interned_once(self):
        record = make_record()
        record.mentions.append(Mention("emotet", EntityType.MALWARE))
        record.mentions.append(Mention("Emotet", EntityType.MALWARE))
        delta = refactor_record(record)
        malware = [e for e in delta.entities if e.type == EntityType.MALWARE]
        assert len(malware) == 1

    def test_refactor_records_combines(self):
        records = [make_record(report_id=f"r-{i}") for i in range(3)]
        combined = refactor_records(records)
        report_entities = [e for e in combined.entities if e.type.is_report]
        assert len(report_entities) == 3
