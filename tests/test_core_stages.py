"""Unit tests for porter, checker, parsers and extractor."""

import pytest

from repro.core.checker import (
    Checker,
    check_non_empty,
    check_not_ad,
    check_security_signal,
    make_min_text_check,
)
from repro.core.extractor import Extractor
from repro.core.parsers import ParserDispatch, ParserError, classify_category
from repro.core.porter import Porter, report_id_for
from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.crawlers.base import RawDocument
from repro.ontology import CTIRecord, EntityType, ReportRecord
from repro.websim import SimulatedTransport


@pytest.fixture(scope="module")
def crawl_documents(small_web):
    """Raw documents from three sources, one per distinct family."""
    crawlers = build_all_crawlers(["ThreatPedia", "SecureListing", "NVD Shadow"])
    engine = CrawlEngine(
        crawlers, Fetcher(SimulatedTransport(small_web, time_scale=0.0)), num_threads=4
    )
    return engine.crawl().documents


@pytest.fixture(scope="module")
def ported(crawl_documents):
    return Porter().port(crawl_documents)


class TestPorter:
    def test_groups_multipage_reports(self, crawl_documents, ported):
        continuations = [d for d in crawl_documents if d.page_no == 2]
        assert continuations, "encyclopedia source should have page-2 docs"
        multi = [r for r in ported if len(r.pages) == 2]
        assert len(multi) == len(continuations)

    def test_metadata_fields(self, ported):
        record = ported[0]
        assert record.report_id.startswith("rpt-")
        assert record.source
        assert record.url.startswith("https://")
        assert record.title and "|" not in record.title
        assert record.metadata["page_count"] == len(record.pages)

    def test_report_id_deterministic(self):
        assert report_id_for("https://x/1") == report_id_for("https://x/1")
        assert report_id_for("https://x/1") != report_id_for("https://x/2")

    def test_pages_ordered(self):
        docs = [
            RawDocument("u?page=2", "s", "<html>2</html>", 1.0, "u", 2),
            RawDocument("u", "s", "<html><title>t</title>1</html>", 2.0, "u", 1),
        ]
        (record,) = Porter().port(docs)
        assert record.pages[0].endswith("1</html>")
        assert record.fetched_at == 1.0


class TestChecker:
    def _record(self, html: str) -> ReportRecord:
        return ReportRecord("id", "src", "url", pages=[html])

    def test_empty_rejected(self):
        assert check_non_empty(self._record("")) is not None
        assert check_non_empty(self._record("<p>x</p>")) is None

    def test_min_text(self):
        check = make_min_text_check(50)
        assert check(self._record("<p>short</p>")) is not None
        assert check(self._record("<p>" + "long words here " * 10 + "</p>")) is None

    def test_security_signal(self):
        assert check_security_signal(self._record("<p>cake recipes</p>")) is not None
        assert (
            check_security_signal(self._record("<p>new ransomware strain</p>")) is None
        )

    def test_ad_rejected(self):
        assert check_not_ad(self._record("<p>Buy now! 50% off malware</p>")) is not None

    def test_filter_report(self, ported):
        report = Checker().filter(ported)
        assert report.pass_rate > 0.9
        for _record, reason in report.rejected:
            assert reason

    def test_real_reports_mostly_pass(self, ported):
        checker = Checker()
        passed = [r for r in ported if checker.why_rejected(r) is None]
        assert len(passed) >= len(ported) * 0.9


class TestParsers:
    @pytest.fixture(scope="class")
    def records(self, ported):
        checker = Checker()
        passed = [r for r in ported if checker.why_rejected(r) is None]
        return ParserDispatch().parse_all(passed)

    def test_every_source_parses(self, records):
        sources = {record.source for record in records}
        assert sources == {"ThreatPedia", "SecureListing", "NVD Shadow"}

    def test_titles_and_vendor_extracted(self, records):
        for record in records:
            assert record.title
            assert record.vendor
            assert record.published

    def test_categories_assigned(self, records):
        assert {r.report_category for r in records} <= {
            "malware",
            "vulnerability",
            "attack",
        }
        assert all(r.report_category for r in records)

    def test_encyclopedia_iocs_from_page_two(self, records, small_web):
        ency = [r for r in records if r.source == "ThreatPedia"]
        site = small_web.site_by_name("ThreatPedia")
        for record in ency:
            truth = site.ground_truth(record.url)
            for kind, values in truth.ioc_table.items():
                assert set(record.iocs.get(kind, [])) == set(values), kind

    def test_blog_iocs_from_indicator_list(self, records, small_web):
        blogs = [r for r in records if r.source == "SecureListing"]
        site = small_web.site_by_name("SecureListing")
        for record in blogs:
            truth = site.ground_truth(record.url)
            expected = {v for values in truth.ioc_table.values() for v in values}
            got = {v for values in record.iocs.values() for v in values}
            assert expected <= got

    def test_structured_fields_extracted(self, records, small_web):
        ency = [r for r in records if r.source == "ThreatPedia"][0]
        truth = small_web.site_by_name("ThreatPedia").ground_truth(ency.url)
        for key, value in truth.structured_fields.items():
            assert ency.structured_fields.get(key) == value

    def test_parser_mentions_from_fields(self, records):
        ency = [r for r in records if r.source == "ThreatPedia"][0]
        parser_mentions = [m for m in ency.mentions if m.method == "parser"]
        assert any(m.type == EntityType.MALWARE for m in parser_mentions)

    def test_unknown_source_raises(self):
        record = ReportRecord("id", "NoSuchSite", "url", pages=["<p>x</p>"])
        with pytest.raises(ParserError):
            ParserDispatch().parse(record)

    def test_classify_category_fallback(self):
        assert classify_category("New ransomware hits", "") == "malware"
        assert classify_category("CVE-2021-1 exploited", "") == "vulnerability"
        assert classify_category("Espionage campaign", "spies did things") == "attack"


class TestExtractor:
    def test_extract_fills_mentions_and_iocs(self):
        record = CTIRecord(
            report_id="r",
            source="s",
            url="u",
            summary=(
                "The wannacry ransomware connects to 10.1.2.3 and dropped "
                "tasksche.exe on hosts."
            ),
        )
        Extractor().extract(record)
        texts = {(m.text, m.type) for m in record.mentions}
        assert ("wannacry", EntityType.MALWARE) in texts
        assert "10.1.2.3" in record.ioc_values(EntityType.IP)
        assert "tasksche.exe" in record.ioc_values(EntityType.FILE_NAME)

    def test_extract_finds_relations(self):
        record = CTIRecord(
            report_id="r",
            source="s",
            url="u",
            summary="The wannacry ransomware dropped tasksche.exe on hosts.",
        )
        Extractor().extract(record)
        triples = {(r.head_text, r.verb, r.tail_text) for r in record.relations}
        assert ("wannacry", "drop", "tasksche.exe") in triples

    def test_no_duplicate_mentions_with_parser(self):
        record = CTIRecord(
            report_id="r",
            source="s",
            url="u",
            summary="The wannacry ransomware spread.",
        )
        from repro.ontology import Mention

        record.mentions.append(
            Mention("wannacry", EntityType.MALWARE, method="parser")
        )
        Extractor().extract(record)
        malware_mentions = [
            m for m in record.mentions if m.type == EntityType.MALWARE
        ]
        assert len(malware_mentions) == 1

    def test_empty_text_is_noop(self):
        record = CTIRecord(report_id="r", source="s", url="u")
        Extractor().extract(record)
        assert record.mentions == []
