"""Unit tests for the storage connectors."""

import pytest

from repro.connectors import (
    GraphConnector,
    SQLConnector,
    SearchConnector,
    registry,
)
from repro.ontology import CTIRecord, EntityType, Mention, RelationMention


def record_with(report_id="r1", malware="emotet", ip="10.0.0.1", verb="connects"):
    record = CTIRecord(
        report_id=report_id,
        source="ThreatPedia",
        url=f"https://x/{report_id}",
        title=f"Report about {malware}",
        vendor="Arcane Labs",
        report_category="malware",
        summary=f"The {malware} trojan connects to {ip}.",
    )
    record.add_ioc(EntityType.IP, ip)
    record.mentions.append(Mention(malware, EntityType.MALWARE))
    record.relations.append(
        RelationMention(malware, EntityType.MALWARE, verb, ip, EntityType.IP)
    )
    return record


class TestGraphConnector:
    def test_single_ingest_creates_entities(self):
        connector = GraphConnector()
        stats = connector.ingest([record_with()])
        assert stats.entities_created >= 4  # report, vendor, malware, ip
        assert connector.graph.find_node("Malware", merge_key="emotet")

    def test_exact_description_merge(self):
        connector = GraphConnector()
        connector.ingest([record_with(report_id="r1")])
        connector.ingest([record_with(report_id="r2")])
        assert len(connector.graph.find_nodes("Malware")) == 1
        assert len(connector.graph.find_nodes("IP")) == 1
        # two distinct report nodes though
        assert len(connector.graph.find_nodes("MalwareReport")) == 2

    def test_case_variant_merges(self):
        connector = GraphConnector()
        connector.ingest([record_with(malware="Emotet", report_id="a")])
        connector.ingest([record_with(malware="emotet", report_id="b")])
        assert len(connector.graph.find_nodes("Malware")) == 1

    def test_naming_convention_variant_does_not_merge(self):
        # deferred to the fusion stage by design
        connector = GraphConnector()
        connector.ingest([record_with(malware="agent tesla", report_id="a")])
        connector.ingest([record_with(malware="AgentTesla", report_id="b")])
        assert len(connector.graph.find_nodes("Malware")) == 2

    def test_duplicate_relation_bumps_weight(self):
        connector = GraphConnector()
        connector.ingest([record_with(report_id="r1")])
        connector.ingest([record_with(report_id="r2")])
        edges = [
            e for e in connector.graph.edges("CONNECTS_TO")
        ]
        assert len(edges) == 1
        assert edges[0].properties["weight"] == 2
        assert set(edges[0].properties["reports"]) == {"r1", "r2"}

    def test_attributes_augmented_not_overwritten(self):
        connector = GraphConnector()
        first = record_with(report_id="r1")
        first.mentions[0] = Mention("emotet", EntityType.MALWARE, method="parser")
        connector.ingest([first])
        node = connector.graph.find_node("Malware", merge_key="emotet")
        method_before = node.properties.get("method")
        connector.ingest([record_with(report_id="r2")])
        assert node.properties.get("method") == method_before


class TestSQLConnector:
    def test_ingest_and_counts(self):
        connector = SQLConnector()
        connector.ingest([record_with(report_id="r1")])
        connector.ingest([record_with(report_id="r2")])
        assert connector.entity_count() > 0
        assert connector.find_entity("Malware", "EMOTET") is not None
        counts = connector.label_counts()
        assert counts["Malware"] == 1
        assert counts["MalwareReport"] == 2

    def test_relation_weight_merge(self):
        connector = SQLConnector()
        connector.ingest([record_with(report_id="r1")])
        connector.ingest([record_with(report_id="r2")])
        row = connector.connection.execute(
            "SELECT weight FROM relations WHERE type = 'CONNECTS_TO'"
        ).fetchone()
        assert row[0] == 2

    def test_reports_table(self):
        connector = SQLConnector()
        connector.ingest([record_with(report_id="r1")])
        rows = connector.connection.execute("SELECT * FROM reports").fetchall()
        assert len(rows) == 1

    def test_file_persistence(self, tmp_path):
        path = tmp_path / "kg.sqlite"
        connector = SQLConnector(path)
        connector.ingest([record_with()])
        connector.close()
        reopened = SQLConnector(path)
        assert reopened.entity_count() > 0

    def test_parity_with_graph_connector(self):
        graph = GraphConnector()
        sql = SQLConnector()
        records = [record_with(report_id=f"r{i}", malware=f"fam{i % 2}") for i in range(4)]
        graph.ingest(records)
        sql.ingest(records)
        assert sql.label_counts() == graph.graph.label_counts()


class TestSearchConnector:
    def test_reports_searchable(self):
        connector = SearchConnector()
        connector.ingest([record_with(malware="quakbot")])
        hits = connector.index.search("quakbot")
        assert hits and hits[0].doc_id == "r1"

    def test_ioc_values_searchable(self):
        connector = SearchConnector()
        connector.ingest([record_with(ip="10.99.88.77")])
        assert connector.index.search("10.99.88.77")


class TestRegistry:
    def test_known_connectors_registered(self):
        assert {"graph", "sql", "search"} <= set(registry.factories)

    def test_create_by_name(self):
        connector = registry.create("sql")
        assert isinstance(connector, SQLConnector)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            registry.create("bogus")
