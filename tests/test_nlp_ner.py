"""Tests for the entity recogniser, embeddings and metrics."""

import random

from repro.nlp import (
    EntityRecognizer,
    WordEmbeddings,
    evaluate_entities,
    evaluate_relations,
)
from repro.nlp.ner import decode_bio
from repro.nlp.tokenize import tokenize_words
from repro.ontology import EntityType
from repro.websim.scenario import generate_report_content, make_scenarios


class TestDecodeBio:
    def test_simple_span(self):
        tokens = tokenize_words("the wannacry ransomware spread")
        labels = ["O", "B-Malware", "O", "O"]
        (span,) = decode_bio(tokens, labels)
        assert (span.start, span.end, span.type) == (1, 2, EntityType.MALWARE)
        assert span.text == "wannacry"

    def test_multi_token_span(self):
        tokens = tokenize_words("agent tesla struck")
        labels = ["B-Malware", "I-Malware", "O"]
        (span,) = decode_bio(tokens, labels)
        assert span.text == "agent tesla"

    def test_adjacent_spans_with_b_tags(self):
        tokens = tokenize_words("emotet trickbot joined")
        labels = ["B-Malware", "B-Malware", "O"]
        spans = decode_bio(tokens, labels)
        assert [s.text for s in spans] == ["emotet", "trickbot"]

    def test_type_change_splits_span(self):
        tokens = tokenize_words("emotet mimikatz here")
        labels = ["B-Malware", "I-Tool", "O"]
        spans = decode_bio(tokens, labels)
        assert [(s.text, s.type) for s in spans] == [
            ("emotet", EntityType.MALWARE),
            ("mimikatz", EntityType.TOOL),
        ]

    def test_confidence_is_min_over_span(self):
        tokens = tokenize_words("agent tesla")
        labels = ["B-Malware", "I-Malware"]
        (span,) = decode_bio(tokens, labels, [0.9, 0.4])
        assert span.confidence == 0.4


class TestEmbeddings:
    def test_similar_contexts_have_similar_vectors(self):
        sentences = []
        for malware in ("alpha", "beta", "gamma"):
            for _ in range(30):
                sentences.append(f"the {malware} ransomware encrypts files".split())
        for tool in ("hammer", "wrench"):
            for _ in range(30):
                sentences.append(f"operators run {tool} to move laterally".split())
        emb = WordEmbeddings(dim=8, min_count=2).train(sentences)
        assert emb.similarity("alpha", "beta") > emb.similarity("alpha", "hammer")

    def test_oov_vector_is_zero(self):
        emb = WordEmbeddings(dim=4).train([["a", "b", "a", "b"]] * 5)
        assert not emb.vector("zzz").any()
        assert emb.similarity("zzz", "a") == 0.0

    def test_bucket_features_shape(self):
        emb = WordEmbeddings(dim=8).train([["a", "b", "c", "a", "b"]] * 10)
        feats = emb.bucket_features("a", buckets=4)
        assert 0 < len(feats) <= 4
        assert all(f.startswith("emb") for f in feats)

    def test_most_similar_excludes_self(self):
        emb = WordEmbeddings(dim=4).train([["x", "y", "z", "x", "y"]] * 10)
        assert all(w != "x" for w, _s in emb.most_similar("x"))


class TestMetrics:
    def test_perfect_match(self):
        pred = [("wannacry", EntityType.MALWARE)]
        ev = evaluate_entities(pred, list(pred))
        assert ev.micro.f1 == 1.0

    def test_case_insensitive_matching(self):
        ev = evaluate_entities(
            [("WannaCry", EntityType.MALWARE)], [("wannacry", EntityType.MALWARE)]
        )
        assert ev.micro.f1 == 1.0

    def test_type_mismatch_is_error(self):
        ev = evaluate_entities(
            [("mimikatz", EntityType.MALWARE)], [("mimikatz", EntityType.TOOL)]
        )
        assert ev.micro.f1 == 0.0

    def test_multiset_counting(self):
        pred = [("x", EntityType.IP)] * 3
        gold = [("x", EntityType.IP)] * 2
        ev = evaluate_entities(pred, gold)
        assert ev.micro.true_positives == 2
        assert ev.micro.false_positives == 1

    def test_relation_verb_normalisation(self):
        prf = evaluate_relations(
            [("a", "dropped", "b")], [("a", "drops", "b")]
        )
        assert prf.f1 == 1.0

    def test_empty_inputs(self):
        assert evaluate_entities([], []).micro.f1 == 0.0
        assert evaluate_relations([], []).f1 == 0.0


class TestEntityRecognizer:
    def test_extract_finds_iocs_without_training_effort(self, small_recognizer):
        _s, mentions = small_recognizer.extract(
            "It beacons to 10.1.2.3 and downloads https://bad.example.com/x now."
        )
        kinds = {m.type for m in mentions}
        assert EntityType.IP in kinds
        assert EntityType.URL in kinds

    def test_extract_recognises_known_malware(self, small_recognizer):
        _s, mentions = small_recognizer.extract(
            "The wannacry ransomware encrypts files across mapped drives."
        )
        assert any(
            m.type == EntityType.MALWARE and m.text == "wannacry" for m in mentions
        )

    def test_mention_offsets_match_text(self, small_recognizer):
        text = "The emotet trojan communicates with its server at files.example now."
        _s, mentions = small_recognizer.extract(text)
        for m in mentions:
            assert text[m.start : m.end] == m.text

    def test_generalises_beyond_gazetteer(self, small_recognizer):
        # 'zephyrlock' and 'crimson fox' are in no curated list;
        # context must carry them.  The quickly-trained fixture is
        # allowed to miss one probe; the benchmark model misses none.
        probes = [
            (
                "Once executed, zephyrlock drops a copy of itself as "
                r"C:\Temp\x.dll and encrypts files.",
                ("zephyrlock", EntityType.MALWARE),
            ),
            (
                "The threat actor crimson fox uses credential dumping "
                "to establish persistence.",
                ("crimson fox", EntityType.THREAT_ACTOR),
            ),
            (
                "Operators behind zephyrlock modified registry keys to "
                "survive reboots.",
                ("zephyrlock", EntityType.MALWARE),
            ),
        ]
        hits = 0
        for text, (name, entity_type) in probes:
            _s, mentions = small_recognizer.extract(text)
            if any(m.type == entity_type and m.text == name for m in mentions):
                hits += 1
        assert hits >= 2

    def test_save_load_round_trip(self, small_recognizer, tmp_path):
        path = tmp_path / "ner"
        small_recognizer.save(path)
        loaded = EntityRecognizer.load(
            path, embeddings=small_recognizer.features.embeddings
        )
        text = "The wannacry ransomware encrypts files."
        _s1, m1 = small_recognizer.extract(text)
        _s2, m2 = loaded.extract(text)
        assert [(m.text, m.type) for m in m1] == [(m.text, m.type) for m in m2]

    def test_end_to_end_f1_above_ninety(self, small_recognizer):
        """Smoke-level reproduction of the >92% F1 claim (scaled down)."""
        test_scen = make_scenarios(6, seed=77)
        pred, gold = [], []
        for s in test_scen:
            content = generate_report_content(
                s, random.Random(f"e{s.scenario_id}"), sentence_count=6
            )
            text = " ".join(gs.text for gs in content.truth.sentences)
            _sents, mentions = small_recognizer.extract(text)
            pred += [(m.text, m.type) for m in mentions]
            gold += [
                (m.text, m.type)
                for gs in content.truth.sentences
                for m in gs.mentions
            ]
        ev = evaluate_entities(pred, gold)
        # the full benchmark trains on more data and reaches ~0.99;
        # the fast fixture must still clear a high bar
        assert ev.micro.f1 > 0.85
