"""Tests for the applications: threat search (demo scenarios) and stats."""

import pytest

from repro import SecurityKG, SystemConfig
from repro.apps import GrowthTracker, ThreatSearchApp, compute_stats


@pytest.fixture(scope="module")
def demo_system():
    kg = SecurityKG(
        SystemConfig(
            scenario_count=10,
            reports_per_site=4,
            connectors=["graph", "search"],
        )
    )
    kg.run_once()
    kg.run_fusion()
    return kg


@pytest.fixture(scope="module")
def app(demo_system):
    return ThreatSearchApp(demo_system)


class TestDemoScenario1:
    """Keyword search investigation (the 'wannacry' walkthrough)."""

    def test_investigation_has_focus_and_reports(self, demo_system, app):
        malware = next(iter(demo_system.graph.nodes("Malware")))
        name = malware.properties["name"]
        investigation = app.investigate(name)
        assert investigation.focus is not None
        assert investigation.reports
        assert investigation.related  # neighbours of every relevant type

    def test_investigation_surfaces_iocs(self, demo_system, app):
        malware = max(
            demo_system.graph.nodes("Malware"),
            key=lambda n: demo_system.graph.degree(n.node_id),
        )
        investigation = app.investigate(malware.properties["name"])
        ioc_kinds = {"IP", "Domain", "Hash", "FileName", "URL"}
        assert ioc_kinds & set(investigation.related)

    def test_summary_is_readable(self, demo_system, app):
        malware = next(iter(demo_system.graph.nodes("Malware")))
        text = app.investigate(malware.properties["name"]).summary()
        assert "Investigation" in text and "focus node" in text


class TestDemoScenario2:
    """Actor technique profiling (the 'cozyduke' walkthrough)."""

    def test_techniques_of_actor(self, demo_system, app):
        actors = sorted(
            demo_system.graph.nodes("ThreatActor"),
            key=lambda n: -demo_system.graph.degree(n.node_id),
        )
        assert actors
        techniques = app.techniques_of(actors[0].properties["name"])
        assert techniques, "the busiest actor should have USES edges"

    def test_actors_sharing_techniques(self, demo_system, app):
        found_any = False
        for actor in demo_system.graph.nodes("ThreatActor"):
            sharing = app.actors_sharing_techniques(actor.properties["name"])
            for other, count in sharing:
                assert other != actor.properties["name"]
                assert count >= 1
                found_any = True
        # with a shared scenario pool some technique overlap must exist
        assert found_any

    def test_unknown_actor(self, app):
        assert app.techniques_of("no such actor") == []
        assert app.actors_sharing_techniques("no such actor") == []


class TestDemoScenario3:
    """Cypher query returns the same node as keyword search."""

    def test_cypher_equals_keyword_focus(self, demo_system, app):
        for malware in list(demo_system.graph.nodes("Malware"))[:5]:
            name = malware.properties["name"]
            via_cypher = app.cypher_lookup(name)
            via_keyword = app.investigate(name).focus
            assert via_cypher is not None and via_keyword is not None
            assert via_cypher.node_id == via_keyword.node_id

    def test_paper_literal_query_form(self, demo_system):
        malware = next(iter(demo_system.graph.nodes("Malware")))
        name = malware.properties["name"]
        rows = demo_system.cypher(f'match (n) where n.name = "{name}" return n')
        assert rows and rows[0]["n"].node_id == malware.node_id

    def test_alias_lookup_after_fusion(self, demo_system, app):
        for node in demo_system.graph.nodes("Malware"):
            aliases = node.properties.get("aliases", [])
            if aliases:
                found = app.find_node(str(aliases[0]))
                assert found is not None and found.node_id == node.node_id
                return
        pytest.skip("no fused aliases in this corpus")


class TestInvestigationMarkdown:
    def test_markdown_sections(self, demo_system, app):
        malware = next(iter(demo_system.graph.nodes("Malware")))
        report = app.investigate(malware.properties["name"]).to_markdown()
        assert report.startswith("# Investigation:")
        assert "## Supporting reports" in report
        assert "## Related entities" in report
        assert "| type | entities |" in report

    def test_markdown_includes_aliases_after_fusion(self, demo_system, app):
        for node in demo_system.graph.nodes("Malware"):
            if node.properties.get("aliases"):
                report = app.investigate(node.properties["name"]).to_markdown()
                assert "Also known as" in report
                return
        pytest.skip("no fused aliases in this corpus")


class TestStats:
    def test_compute_stats(self, demo_system):
        stats = compute_stats(demo_system.graph)
        assert stats.nodes == demo_system.graph.node_count
        assert stats.edges == demo_system.graph.edge_count
        assert sum(stats.labels.values()) == stats.nodes
        assert stats.top_entities[0][2] >= stats.top_entities[-1][2]
        assert sum(stats.degree_histogram.values()) == stats.nodes

    def test_describe(self, demo_system):
        text = compute_stats(demo_system.graph).describe()
        assert "knowledge graph" in text

    def test_growth_tracker(self):
        from repro.graphdb import PropertyGraph

        graph = PropertyGraph()
        tracker = GrowthTracker(graph)
        graph.create_node("A")
        tracker.record(new_reports=1)
        graph.create_node("B")
        graph.create_node("C")
        tracker.record(new_reports=2)
        assert tracker.series() == [(1, 1, 0), (3, 3, 0)]
