"""Integration tests for the SecurityKG facade and configuration."""

import pytest

from repro import SecurityKG, SystemConfig


class TestSystemConfig:
    def test_json_round_trip(self):
        config = SystemConfig(crawl_threads=3, connectors=["graph"])
        assert SystemConfig.from_json(config.to_json()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig.from_dict({"no_such_option": 1})

    def test_file_round_trip(self, tmp_path):
        config = SystemConfig(recognizer="regex")
        path = tmp_path / "config.json"
        config.save(path)
        assert SystemConfig.from_file(path) == config


@pytest.fixture(scope="module")
def small_system():
    kg = SecurityKG(
        SystemConfig(
            scenario_count=8,
            reports_per_site=3,
            sources=["ThreatPedia", "SecureListing", "InfoSec Ledger", "NVD Shadow",
                     "OTX Mirror"],
            connectors=["graph", "search", "sql"],
        )
    )
    kg.report = kg.run_once()
    return kg


class TestRunOnce:
    def test_everything_collected(self, small_system):
        assert small_system.report.crawl.article_count == 15
        assert small_system.report.reports_stored > 0
        assert small_system.report.pipeline_errors == []

    def test_graph_populated(self, small_system):
        stats = small_system.stats()
        assert stats["nodes"] > 20
        assert stats["edges"] > 20
        assert "Malware" in stats["labels"]

    def test_sql_connector_agrees_with_graph(self, small_system):
        sql = small_system.connectors["sql"]
        assert sql.entity_count() == small_system.graph.node_count
        assert sql.label_counts() == small_system.graph.label_counts()

    def test_search_connector_indexed_reports(self, small_system):
        search = small_system.connectors["search"]
        assert search.index.doc_count == small_system.report.reports_stored

    def test_incremental_second_run(self, small_system):
        second = small_system.run_once()
        assert second.crawl.article_count == 0
        assert second.reports_stored == 0

    def test_cypher_application(self, small_system):
        rows = small_system.cypher("MATCH (m:Malware) RETURN count(m) AS c")
        assert rows[0]["c"] == small_system.graph.label_counts()["Malware"]

    def test_keyword_search_application(self, small_system):
        malware = next(iter(small_system.graph.nodes("Malware")))
        name = malware.properties["name"]
        hits = small_system.keyword_search(name)
        assert hits, name

    def test_fusion_runs(self, small_system):
        report = small_system.run_fusion()
        assert report.nodes_after <= report.nodes_before

    def test_describe_is_readable(self, small_system):
        text = small_system.report.describe()
        assert "crawled" in text and "stored" in text


class TestConfigurationEffects:
    def test_max_articles_caps_collection(self):
        kg = SecurityKG(
            SystemConfig(
                scenario_count=6,
                reports_per_site=5,
                sources=["SecureListing"],
                max_articles=2,
                connectors=["graph"],
            )
        )
        report = kg.run_once()
        assert report.crawl.article_count == 2

    def test_serialized_boundaries_equivalent(self):
        base = SystemConfig(
            scenario_count=6,
            reports_per_site=3,
            sources=["SecureListing"],
            connectors=["graph"],
        )
        plain = SecurityKG(base)
        plain.run_once()
        serialized_config = SystemConfig(**{**base.__dict__,
                                            "serialize_boundaries": True})
        serialized = SecurityKG(serialized_config)
        serialized.run_once()
        assert (
            plain.graph.label_counts() == serialized.graph.label_counts()
        )
        assert plain.graph.edge_count == serialized.graph.edge_count

    def test_regex_recognizer_configurable(self):
        kg = SecurityKG(
            SystemConfig(
                scenario_count=4,
                reports_per_site=2,
                sources=["SecureListing"],
                recognizer="regex",
                connectors=["graph"],
            )
        )
        report = kg.run_once()
        assert report.reports_stored > 0
        # the regex recogniser still finds IOC nodes
        assert any(
            label in kg.graph.label_counts() for label in ("IP", "Domain", "Hash")
        )

    def test_unknown_recognizer_rejected(self):
        with pytest.raises(ValueError):
            SecurityKG(SystemConfig(recognizer="nope"))

    def test_graph_persistence(self, tmp_path):
        config = SystemConfig(
            scenario_count=4,
            reports_per_site=2,
            sources=["OTX Mirror"],
            connectors=["graph"],
            graph_path=str(tmp_path / "graph"),
        )
        kg = SecurityKG(config)
        kg.run_once()
        nodes = kg.graph.node_count
        kg.database.close()

        reopened = SecurityKG(config)
        assert reopened.graph.node_count == nodes
