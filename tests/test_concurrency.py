"""Tests for the interprocedural concurrency analyzer and the runtime
lock-order witness.

The synthetic-violation tests seed each ``conc/*`` rule with a minimal
program that must fire it -- the real tree is kept at zero findings, so
these are the proof the rules still bite.  The witness tests use
*private* :class:`LockOrderWitness` instances so their deliberately bad
orders never pollute the session-wide witness installed by conftest.
"""

import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import (
    DEFAULT_ROOT,
    _cycle_findings,
    analyze_package,
    analyze_paths,
)
from repro.connectors import SQLConnector
from repro.connectors.sql import SQLParticipant
from repro.ontology import CTIRecord, EntityType, Mention
from repro.runtime.locks import (
    LockOrderViolation,
    LockOrderWitness,
    WitnessLock,
)
from repro.storage import StorageEngine

REPO_ROOT = Path(__file__).resolve().parents[1]


def analyze_source(tmp_path, source, name="mod.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze_paths([target], root=tmp_path)


def rules(diags):
    return [d.rule for d in diags]


class TestInconsistentGuard:
    def test_unguarded_thread_reachable_write_fires(self, tmp_path):
        model, diags = analyze_source(
            tmp_path,
            '''
            import threading
            from repro.runtime import named_lock

            class Counter:
                def __init__(self):
                    self._lock = named_lock("test.counter")
                    self.value = 0

                def locked_bump(self):
                    with self._lock:
                        self.value += 1

                def racy_bump(self):
                    self.value += 1

            def start():
                counter = Counter()
                worker = threading.Thread(target=counter.racy_bump, name="w")
                worker.start()
                counter.locked_bump()
            ''',
        )
        assert rules(diags) == ["conc/inconsistent-guard"]
        assert "value" in diags[0].message
        assert model.guards["Counter"]["value"] == ["test.counter"]

    def test_consistently_guarded_class_is_clean(self, tmp_path):
        _, diags = analyze_source(
            tmp_path,
            '''
            import threading
            from repro.runtime import named_lock

            class Counter:
                def __init__(self):
                    self._lock = named_lock("test.counter")
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

            def start():
                counter = Counter()
                threading.Thread(target=counter.bump, name="w").start()
                counter.bump()
            ''',
        )
        assert diags == []


class TestLockOrderCycle:
    def test_reversed_nesting_fires(self, tmp_path):
        _, diags = analyze_source(
            tmp_path,
            '''
            from repro.runtime import named_lock

            def one(a=named_lock("test.a"), b=named_lock("test.b")):
                with a:
                    with b:
                        pass

            def two(a=named_lock("test.a"), b=named_lock("test.b")):
                with b:
                    with a:
                        pass
            ''',
        )
        assert rules(diags) == ["conc/lock-order-cycle"]
        assert "test.a" in diags[0].message and "test.b" in diags[0].message

    def test_consistent_nesting_yields_edge_not_finding(self, tmp_path):
        model, diags = analyze_source(
            tmp_path,
            '''
            from repro.runtime import named_lock

            def one(a=named_lock("test.a"), b=named_lock("test.b")):
                with a:
                    with b:
                        pass

            def two(a=named_lock("test.a"), b=named_lock("test.b")):
                with a:
                    with b:
                        pass
            ''',
        )
        assert diags == []
        assert ("test.a", "test.b") in model.edge_pairs()

    def test_cycle_detection_groups_components(self):
        edges = {
            ("a", "b"): {"m.py:1"},
            ("b", "c"): {"m.py:2"},
            ("c", "a"): {"m.py:3"},
            ("x", "y"): {"m.py:4"},  # acyclic side edge
        }
        diags = _cycle_findings(edges)
        assert rules(diags) == ["conc/lock-order-cycle"]
        assert "a -> b -> c -> a" in diags[0].message
        assert "x" not in diags[0].message

    def test_two_disjoint_cycles_report_separately(self):
        edges = {
            ("a", "b"): {"m.py:1"},
            ("b", "a"): {"m.py:2"},
            ("x", "y"): {"m.py:3"},
            ("y", "x"): {"m.py:4"},
        }
        diags = _cycle_findings(edges)
        assert rules(diags) == [
            "conc/lock-order-cycle",
            "conc/lock-order-cycle",
        ]


class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        _, diags = analyze_source(
            tmp_path,
            '''
            import threading
            from repro.runtime import named_lock

            class Poller:
                def __init__(self, clock):
                    self._lock = named_lock("test.poll")
                    self.clock = clock

                def tick(self):
                    with self._lock:
                        self.clock.sleep(1.0)

            def start(poller):
                threading.Thread(target=poller.tick, name="p").start()
            ''',
        )
        assert rules(diags) == ["conc/blocking-under-lock"]
        assert "test.poll" in diags[0].message

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        _, diags = analyze_source(
            tmp_path,
            '''
            import threading
            from repro.runtime import named_lock

            class Poller:
                def __init__(self, clock):
                    self._lock = named_lock("test.poll")
                    self.clock = clock

                def tick(self):
                    with self._lock:
                        pass
                    self.clock.sleep(1.0)

            def start(poller):
                threading.Thread(target=poller.tick, name="p").start()
            ''',
        )
        assert diags == []


class TestContextManagerHolds:
    def test_lock_held_across_yield_extends_caller_body(self, tmp_path):
        model, diags = analyze_source(
            tmp_path,
            '''
            from contextlib import contextmanager
            from repro.runtime import named_lock

            class Engine:
                def __init__(self):
                    self.lock = named_lock("test.engine", reentrant=True)

                @contextmanager
                def transaction(self):
                    with self.lock:
                        yield self

            class Store:
                def __init__(self):
                    self._lock = named_lock("test.store")
                    self.engine = Engine()

                def commit(self):
                    with self.engine.transaction():
                        with self._lock:
                            pass
            ''',
        )
        assert diags == []
        assert ("test.engine", "test.store") in model.edge_pairs()


class TestCanonicalModel:
    def test_synthetic_model_is_byte_stable(self, tmp_path):
        source = '''
            from repro.runtime import named_lock

            def run(a=named_lock("test.a"), b=named_lock("test.b")):
                with a:
                    with b:
                        pass
        '''
        first, _ = analyze_source(tmp_path, source, name="one.py")
        second, _ = analyze_source(tmp_path, source, name="one.py")
        assert first.canonical_json() == second.canonical_json()
        report = first.report()
        assert report["version"] == 1
        assert set(report) == {
            "version", "locks", "order", "guards", "thread_roots",
        }

    def test_package_model_is_byte_stable(self):
        cached, _ = analyze_package()
        fresh, _ = analyze_paths([DEFAULT_ROOT], root=DEFAULT_ROOT)
        assert fresh.canonical_json() == cached.canonical_json()

    def test_closure_is_transitive(self, tmp_path):
        model, _ = analyze_source(
            tmp_path,
            '''
            from repro.runtime import named_lock

            def run(
                a=named_lock("test.a"),
                b=named_lock("test.b"),
                c=named_lock("test.c"),
            ):
                with a:
                    with b:
                        pass
                with b:
                    with c:
                        pass
            ''',
        )
        assert ("test.a", "test.c") in model.closure()


class TestRepoModel:
    """The analysed tree itself: zero findings, a sane hierarchy."""

    def test_package_has_no_findings(self):
        _, diags = analyze_package()
        assert diags == []

    def test_hierarchy_is_acyclic(self):
        model, _ = analyze_package()
        closure = model.closure()
        assert not [pair for pair in closure if (pair[1], pair[0]) in closure]

    def test_transaction_scope_edge_is_modelled(self):
        # StorageEngine.transaction holds storage.engine across its
        # yield; standalone connectors ingest inside that with-body
        model, _ = analyze_package()
        assert ("storage.engine", "connectors.sql") in model.edge_pairs()

    def test_known_locks_and_guards_present(self):
        model, _ = analyze_package()
        names = model.lock_names()
        for expected in ("storage.engine", "crawl.frontier", "obs.metrics"):
            assert expected in names
        assert model.locks["storage.engine"]["reentrant"] is True
        assert model.guards  # the guard map is populated
        assert model.roots  # thread roots were discovered


class TestWitness:
    def test_records_acquisition_order_edges(self):
        witness = LockOrderWitness()
        witness.enable()
        outer = WitnessLock("w.outer", witness)
        inner = WitnessLock("w.inner", witness)
        with outer:
            with inner:
                pass
        assert witness.observed_edges() == [("w.outer", "w.inner")]

    def test_reentrant_hold_records_no_edge(self):
        witness = LockOrderWitness()
        witness.enable()
        lock = WitnessLock("w.re", witness, reentrant=True)
        other = WitnessLock("w.other", witness)
        with lock:
            with lock:
                with other:
                    pass
        assert witness.observed_edges() == [("w.re", "w.other")]

    def test_violations_are_edges_outside_the_closure(self):
        witness = LockOrderWitness()
        witness.enable()
        a = WitnessLock("w.a", witness)
        b = WitnessLock("w.b", witness)
        with b:
            with a:
                pass
        closure = frozenset({("w.a", "w.b")})
        assert witness.violations(closure) == [("w.b", "w.a")]
        # restricting to known names hides synthetic locks
        assert witness.violations(closure, known_names={"w.a"}) == []

    def test_reversing_a_known_edge_raises_immediately(self):
        witness = LockOrderWitness()
        witness.enable(hierarchy={("w.a", "w.b")})
        a = WitnessLock("w.a", witness)
        b = WitnessLock("w.b", witness)
        with pytest.raises(LockOrderViolation):
            with b:
                with a:
                    pass

    def test_reset_drops_edges(self):
        witness = LockOrderWitness()
        witness.enable()
        with WitnessLock("w.a", witness):
            with WitnessLock("w.b", witness):
                pass
        witness.reset()
        assert witness.observed_edges() == []


def _record(report_id: str) -> CTIRecord:
    record = CTIRecord(
        report_id=report_id,
        source="ThreatPedia",
        url=f"https://x/{report_id}",
        title=f"Report {report_id}",
        vendor="Arcane Labs",
        report_category="malware",
        summary=f"The emotet trojan connects to 10.0.0.{len(report_id)}.",
    )
    record.add_ioc(EntityType.IP, "10.0.0.1")
    record.mentions.append(Mention("emotet", EntityType.MALWARE))
    return record


class TestWitnessProperty:
    """Randomised real workloads never leave the static hierarchy.

    The session-wide witness records every acquisition these workloads
    make; the property checks -- per example, so hypothesis can shrink
    a counterexample -- that the observed edges between model-known
    locks stay inside the static closure.
    """

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(
                ["attached", "tx_standalone", "standalone", "flush", "reads"]
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_random_store_workloads_stay_inside_hierarchy(self, ops):
        from repro.runtime import WITNESS

        model, _ = analyze_package()
        closure = model.closure()
        engine = StorageEngine(None, [SQLParticipant()], fsync=False)
        attached = SQLConnector(engine=engine)
        standalone = SQLConnector()
        try:
            for index, op in enumerate(ops):
                record = _record(f"r{index}")
                if op == "attached":
                    attached.ingest([record])
                elif op == "tx_standalone":
                    with engine.transaction() as tx:
                        standalone.ingest([record])
                        tx.mark_ingested(record.report_id)
                elif op == "standalone":
                    standalone.ingest([record])
                elif op == "flush":
                    engine.flush()
                else:
                    standalone.entity_count()
                    attached.label_counts()
            bad = WITNESS.violations(closure, known_names=model.lock_names())
            assert bad == []
        finally:
            standalone.close()
            attached.close()
            engine.close()


class TestDocsCoverage:
    def test_every_lock_is_documented(self):
        doc = (REPO_ROOT / "CONCURRENCY.md").read_text(encoding="utf-8")
        model, _ = analyze_package()
        for name in model.lock_names():
            assert f"`{name}`" in doc, f"lock {name} missing from CONCURRENCY.md"

    def test_every_hierarchy_edge_is_documented(self):
        doc = (REPO_ROOT / "CONCURRENCY.md").read_text(encoding="utf-8")
        model, _ = analyze_package()
        for line in model.hierarchy_lines():
            assert line in doc, f"hierarchy row missing from CONCURRENCY.md: {line}"
