"""Fuzz / failure-injection tests: nothing user-facing may crash.

The collection stage feeds arbitrary web bytes into the HTML parser,
arbitrary strings into the tokenizer/IOC recognisers and the search
analyzer, and user-typed queries into the Cypher engine.  All of these
must degrade gracefully -- reject with a typed error or return empty
results -- never raise an unexpected exception.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.graphdb import CypherRuntimeError, CypherEngine, PropertyGraph
from repro.graphdb.cypher.lexer import CypherSyntaxError
from repro.htmlparse import parse
from repro.nlp.ioc import find_iocs
from repro.nlp.pos import tag
from repro.nlp.tokenize import tokenize_sentences
from repro.search import SearchIndex, analyze

_HTMLISH = st.text(
    alphabet=st.sampled_from(list("<>/='\"abc &;#!-\n\t")), max_size=120
)


class TestHtmlParserNeverCrashes:
    @given(_HTMLISH)
    @settings(max_examples=200, deadline=None)
    @example("<")
    @example("</>")
    @example("<a b=c")
    @example("<!-- unterminated")
    @example("<script>never closed")
    @example("<p><table><p></table>")
    @example("&unknown; &#xZZ;")
    def test_parse_any_bytes(self, markup):
        document = parse(markup)
        # text extraction and selection must also be safe
        document.text()
        document.select("a, p, [href]")

    def test_deeply_nested(self):
        markup = "<div>" * 300 + "x" + "</div>" * 300
        assert "x" in parse(markup).text()

    def test_huge_attribute(self):
        markup = f'<a href="{"y" * 10000}">x</a>'
        (anchor,) = parse(markup).select("a")
        assert len(anchor.get("href")) == 10000


class TestNlpNeverCrashes:
    @given(st.text(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_tokenize_any_text(self, text):
        for sentence in tokenize_sentences(text):
            tag(sentence.tokens)

    @given(st.text(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_find_iocs_any_text(self, text):
        for match in find_iocs(text):
            assert text[match.start : match.end] == match.text

    @given(st.text(max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_analyze_any_text(self, text):
        terms = analyze(text)
        assert all(isinstance(term, str) and term for term in terms)


class TestCypherErrorsAreTyped:
    GRAPH = PropertyGraph()

    @given(
        st.text(
            alphabet=st.sampled_from(list("MATCHRETURNWHERE()[]{}<>=-*.,:\"' naz19")),
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_garbage_queries_raise_typed_errors(self, query):
        engine = CypherEngine(self.GRAPH)
        try:
            engine.run(query)
        except (CypherSyntaxError, CypherRuntimeError):
            pass  # the contract: typed, catchable errors only

    def test_pathological_but_valid(self):
        graph = PropertyGraph()
        a = graph.create_node("N", {"name": "a"})
        graph.create_edge(a.node_id, "R", a.node_id)  # self-loop
        engine = CypherEngine(graph)
        rows = engine.run("MATCH (x)-[:R]->(x) RETURN x.name")
        assert [r["x.name"] for r in rows] == ["a"]
        # variable-length over a self-loop must terminate
        rows = engine.run("MATCH (x)-[:R*1..3]->(y) RETURN count(*) AS c")
        assert rows[0]["c"] == 0  # node-distinct paths exclude the start


class TestSearchIndexRobustness:
    @given(st.text(max_size=60), st.text(max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_any_document_any_query(self, body, query):
        index = SearchIndex()
        index.add("d", {"body": body})
        for hit in index.search(query):
            assert hit.doc_id == "d"
        index.phrase_search(query)

    def test_remove_unknown_doc(self):
        assert SearchIndex().remove("nope") is False


class TestEndToEndMalformedSource:
    def test_parser_dispatch_survives_wrong_structure(self):
        """A source serving unexpected markup raises ParserError, which
        the pipeline isolates (stage error), never a crash."""
        from repro.core.parsers import ParserDispatch, ParserError
        from repro.ontology import ReportRecord

        record = ReportRecord(
            report_id="x",
            source="ThreatPedia",  # encyclopedia parser expects its layout
            url="https://threatpedia.example/threats/x",
            pages=["<html><body><p>totally different site design</p></body></html>"],
        )
        with pytest.raises(ParserError):
            ParserDispatch().parse(record)

    def test_pipeline_isolates_parser_error(self):
        from repro.core import Checker, ParserDispatch
        from repro.core.pipeline import Pipeline, Stage
        from repro.ontology import ReportRecord

        good_html = (
            "<html><head><title>T | ThreatPedia</title></head><body>"
            '<div class="threatpedia-entry" data-category="malware">'
            '<h1 class="threatpedia-title">T</h1>'
            '<div class="threatpedia-meta"><span class="vendor">V</span>'
            '<time datetime="2021-01-01">2021-01-01</time></div>'
            '<p class="threatpedia-summary">A malware threat report about '
            "ransomware attacks, long enough to pass the checker filters "
            "and include exploit and phishing vocabulary.</p>"
            "</div></body></html>"
        )
        records = [
            ReportRecord("good", "ThreatPedia",
                         "https://threatpedia.example/threats/good",
                         pages=[good_html]),
            ReportRecord("bad", "ThreatPedia",
                         "https://threatpedia.example/threats/bad",
                         pages=["<html><body><p>malware exploit threat "
                                "ransomware phishing attack vulnerability "
                                "breach adversary campaign backdoor botnet "
                                "indicator advisory compromise actor"
                                "</p></body></html>"]),
        ]
        checker = Checker()
        parsers = ParserDispatch()
        result = Pipeline(
            [
                Stage("check", lambda r: r if checker.why_rejected(r) is None else None),
                Stage("parse", parsers.parse),
            ]
        ).run(records)
        assert len(result.outputs) == 1
        assert result.outputs[0].report_id == "good"
        assert [name for name, _e in result.errors] == ["parse"]
