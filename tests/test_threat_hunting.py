"""Tests for the audit simulator and knowledge-enhanced threat hunting."""

import pytest

from repro import SecurityKG, SystemConfig
from repro.apps.threat_hunting import IocFeedHunter, ThreatHunter
from repro.audit import (
    AuditEvent,
    AuditEventType,
    AuditLogSimulator,
    AuditLog,
    simulate,
)
from repro.graphdb import PropertyGraph


class TestAuditEvents:
    def test_round_trip(self):
        event = AuditEvent(
            event_id=1,
            timestamp=123.0,
            host="ws01",
            event_type=AuditEventType.NET_CONNECT,
            process="x.exe",
            object_value="10.0.0.1",
        )
        assert AuditEvent.from_json(event.to_json()) == event


class TestSimulator:
    @pytest.fixture(scope="class")
    def scenarios(self):
        from repro.websim import make_scenarios

        return make_scenarios(5, seed=3)

    def test_deterministic(self, scenarios):
        log1 = simulate(scenarios, attacks=2, benign_events=50, seed=9)
        log2 = simulate(scenarios, attacks=2, benign_events=50, seed=9)
        assert [e.event.to_dict() for e in log1.entries] == [
            e.event.to_dict() for e in log2.entries
        ]

    def test_labels_partition(self, scenarios):
        log = simulate(scenarios, attacks=2, benign_events=60)
        labels = {entry.label for entry in log.entries}
        assert labels == {"benign", "attack", "contaminated"}

    def test_attack_trace_uses_scenario_iocs(self, scenarios):
        simulator = AuditLogSimulator(seed=1)
        log = AuditLog()
        scenario = scenarios[0]
        simulator.emit_attack(log, scenario)
        values = {entry.event.object_value for entry in log.entries}
        assert set(scenario.ips[:2]) <= values
        assert set(scenario.registry_keys) <= values

    def test_attack_events_share_one_host(self, scenarios):
        simulator = AuditLogSimulator(seed=1)
        log = AuditLog()
        host = simulator.emit_attack(log, scenarios[0])
        assert {entry.event.host for entry in log.entries} == {host}

    def test_timestamps_increase(self, scenarios):
        log = simulate(scenarios, attacks=1, benign_events=30)
        times = [entry.event.timestamp for entry in log.entries]
        assert times == sorted(times)

    def test_truth_lookup(self, scenarios):
        log = simulate(scenarios, attacks=1, benign_events=10)
        entry = log.entries[0]
        assert log.truth_for(entry.event.event_id) is entry
        with pytest.raises(KeyError):
            log.truth_for(10**9)


@pytest.fixture(scope="module")
def hunting_setup():
    kg = SecurityKG(
        SystemConfig(scenario_count=10, reports_per_site=4, connectors=["graph"])
    )
    kg.run_once()
    log = simulate(
        kg.web.scenarios, attacks=3, benign_events=300, contamination_per_scenario=2
    )
    return kg, log


class TestThreatHunter:
    def test_full_event_recall(self, hunting_setup):
        kg, log = hunting_setup
        hunter = ThreatHunter(kg.graph)
        alerts = hunter.scan(log.events)
        alerted_ids = {a.event.event_id for a in alerts}
        assert log.attack_event_ids <= alerted_ids

    def test_alerts_attributed(self, hunting_setup):
        kg, log = hunting_setup
        alerts = ThreatHunter(kg.graph).scan(log.events)
        attributed = [a for a in alerts if a.attributed_to]
        assert len(attributed) / len(alerts) > 0.9

    def test_confirmed_incidents_are_real_attacks(self, hunting_setup):
        kg, log = hunting_setup
        incidents = ThreatHunter(kg.graph).hunt(log.events)
        confirmed = [i for i in incidents if i.confirmed]
        assert confirmed
        for incident in confirmed:
            labels = {
                log.truth_for(a.event.event_id).label for a in incident.alerts
            }
            assert "attack" in labels

    def test_contamination_not_confirmed(self, hunting_setup):
        kg, log = hunting_setup
        incidents = ThreatHunter(kg.graph).hunt(log.events)
        for incident in incidents:
            labels = {
                log.truth_for(a.event.event_id).label for a in incident.alerts
            }
            if labels == {"contaminated"}:
                assert not incident.confirmed

    def test_confirmed_incident_enriched(self, hunting_setup):
        kg, log = hunting_setup
        incidents = [i for i in ThreatHunter(kg.graph).hunt(log.events) if i.confirmed]
        top = incidents[0]
        assert top.related_iocs, "hunt-forward list must come from the graph"
        assert "CONFIRMED" in top.summary()

    def test_benign_only_log_raises_nothing_confirmed(self, hunting_setup):
        kg, _log = hunting_setup
        from repro.audit.simulate import AuditLogSimulator, AuditLog

        simulator = AuditLogSimulator(seed=11)
        benign = AuditLog()
        simulator.emit_benign(benign, 200)
        incidents = ThreatHunter(kg.graph).hunt(benign.events)
        assert not [i for i in incidents if i.confirmed]

    def test_empty_graph(self):
        hunter = ThreatHunter(PropertyGraph())
        assert hunter.scan([]) == []
        assert hunter.hunt([]) == []


class TestIncidentSerialization:
    def test_to_dict_round_trips_through_json(self, hunting_setup):
        import json

        kg, log = hunting_setup
        incidents = ThreatHunter(kg.graph).hunt(log.events)
        confirmed = [i for i in incidents if i.confirmed][0]
        payload = json.loads(json.dumps(confirmed.to_dict()))
        assert payload["confirmed"] is True
        assert payload["evidence"]
        assert set(payload["evidence"][0]) == {
            "event_id", "event_type", "process", "ioc_kind", "ioc_value",
        }


class TestBaselineComparison:
    def test_baseline_matches_same_events(self, hunting_setup):
        kg, log = hunting_setup
        kg_alerts = ThreatHunter(kg.graph).scan(log.events)
        feed_alerts = IocFeedHunter.from_graph(kg.graph).scan(log.events)
        assert {a.event.event_id for a in kg_alerts} == {
            a.event.event_id for a in feed_alerts
        }

    def test_baseline_cannot_attribute(self, hunting_setup):
        kg, log = hunting_setup
        feed_alerts = IocFeedHunter.from_graph(kg.graph).scan(log.events)
        assert all(not a.attributed_to for a in feed_alerts)

    def test_baseline_flags_contamination_indistinguishably(self, hunting_setup):
        kg, log = hunting_setup
        feed_alerts = IocFeedHunter.from_graph(kg.graph).scan(log.events)
        contaminated_alerted = [
            a
            for a in feed_alerts
            if log.truth_for(a.event.event_id).label == "contaminated"
        ]
        # a flat feed fires on coincidental matches and has no machinery
        # to demote them -- the false positives correlation suppresses
        assert contaminated_alerted
