"""Tests for the unified runtime clock (repro.runtime).

The virtual clock is the substrate every timing-dependent layer now
stands on, so these tests pin down its coordination semantics (time
advances only when every registered worker is parked), the exact
virtual timestamps of backoff/politeness behaviour, and the headline
property: identical virtual-time crawls are byte-identical and consume
(essentially) zero wall time.
"""

import json
import threading
import time

import pytest

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.crawlers import (
    CrawlEngine,
    Fetcher,
    Frontier,
    HostRateLimiter,
    JobSpec,
    PeriodicScheduler,
    build_all_crawlers,
)
from repro.runtime import (
    REAL_CLOCK,
    Backoff,
    Clock,
    RealClock,
    RetryPolicy,
    Stopwatch,
    VirtualClock,
    clock_from_name,
)
from repro.websim import SimulatedTransport, build_default_web


class TestRealClock:
    def test_monotonic_now(self):
        clock = RealClock()
        first = clock.now()
        assert clock.now() >= first

    def test_sleep_zero_is_instant(self):
        start = time.perf_counter()
        REAL_CLOCK.sleep(0)
        REAL_CLOCK.sleep(-1)
        assert time.perf_counter() - start < 0.1

    def test_wait_for_set_event(self):
        event = threading.Event()
        event.set()
        assert REAL_CLOCK.wait_for(event, timeout=10.0)

    def test_worker_context_is_noop(self):
        with REAL_CLOCK.worker():
            pass

    def test_condition_is_plain(self):
        lock = threading.Lock()
        cond = REAL_CLOCK.condition(lock)
        assert isinstance(cond, threading.Condition)
        with lock:
            cond.notify_all()

    def test_satisfies_protocol(self):
        assert isinstance(REAL_CLOCK, Clock)
        assert isinstance(VirtualClock(), Clock)


class TestVirtualClockSingleThread:
    def test_sleep_advances_virtual_time_instantly(self):
        clock = VirtualClock()
        start = time.perf_counter()
        clock.sleep(3600.0)
        assert clock.now() == 3600.0
        assert time.perf_counter() - start < 1.0

    def test_sleep_accumulates(self):
        clock = VirtualClock(start=10.0)
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.now() == 12.0

    def test_nonpositive_sleep_is_noop(self):
        clock = VirtualClock()
        clock.sleep(0)
        clock.sleep(-5)
        assert clock.now() == 0.0
        assert clock.sleeps == 0

    def test_wait_for_unset_event_advances_timeout(self):
        clock = VirtualClock()
        assert not clock.wait_for(threading.Event(), timeout=7.0)
        assert clock.now() == 7.0

    def test_wait_for_set_event_is_instant(self):
        clock = VirtualClock()
        event = threading.Event()
        event.set()
        assert clock.wait_for(event, timeout=7.0)
        assert clock.now() == 0.0

    def test_stopwatch_measures_virtual_time(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        clock.sleep(2.5)
        assert watch.elapsed == 2.5
        watch.restart()
        assert watch.elapsed == 0.0


class TestVirtualClockCoordination:
    def test_two_workers_interleave_deterministically(self):
        clock = VirtualClock()
        wakes: list[tuple[str, float]] = []
        lock = threading.Lock()
        ready = threading.Barrier(2)

        def run(name: str, delays: list[float]) -> None:
            with clock.worker():
                ready.wait()
                for delay in delays:
                    clock.sleep(delay)
                    with lock:
                        wakes.append((name, clock.now()))

        threads = [
            threading.Thread(target=run, args=("a", [1.0, 2.0])),
            threading.Thread(target=run, args=("b", [2.5])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert sorted(wakes, key=lambda w: (w[1], w[0])) == [
            ("a", 1.0),
            ("b", 2.5),
            ("a", 3.0),
        ]
        assert clock.now() == 3.0

    def test_time_waits_for_runnable_worker(self):
        # A runnable (never-sleeping) worker pins virtual time until it
        # unregisters; only then may the sleeper's deadline be reached.
        clock = VirtualClock()
        observed: list[float] = []

        def sleeper() -> None:
            with clock.worker():
                clock.sleep(5.0)
                observed.append(clock.now())

        thread = threading.Thread(target=sleeper)
        with clock.worker():
            thread.start()
            # Hand the sleeper time to park; our registration keeps the
            # timeline frozen regardless of how long that takes.
            deadline = time.perf_counter() + 5.0
            while clock.sleeps == 0 and time.perf_counter() < deadline:
                time.sleep(0.001)  # repro: allow[raw-sleep]
            assert clock.now() == 0.0
        thread.join(timeout=10.0)
        assert observed == [5.0]

    def test_condition_wait_does_not_hold_up_time(self):
        clock = VirtualClock()
        lock = threading.Lock()
        cond = clock.condition(lock)
        state = {"go": False}
        done: list[float] = []

        def waiter() -> None:
            with clock.worker():
                with lock:
                    while not state["go"]:
                        cond.wait()
                done.append(clock.now())

        thread = threading.Thread(target=waiter)
        thread.start()
        # the only other activity is this unregistered sleep; it may
        # advance time because the sole worker is condition-waiting
        clock.sleep(4.0)
        assert clock.now() == 4.0
        with lock:
            state["go"] = True
            cond.notify()
        thread.join(timeout=10.0)
        assert done == [4.0]

    def test_notified_waiter_blocks_advancement_until_resumed(self):
        # A notify makes its target runnable immediately: time must not
        # jump to a sleeper's deadline in the window between the notify
        # and the woken thread actually resuming.
        clock = VirtualClock()
        lock = threading.Lock()
        cond = clock.condition(lock)
        state = {"go": False}
        seen: list[float] = []
        ready = threading.Barrier(2)

        def waiter() -> None:
            with clock.worker():
                ready.wait()
                with lock:
                    while not state["go"]:
                        cond.wait()
                seen.append(clock.now())
                clock.sleep(1.0)
                seen.append(clock.now())

        def sleeper() -> None:
            with clock.worker():
                ready.wait()
                # wait for the waiter to park, then hand it work and
                # immediately park on a far deadline
                deadline = time.perf_counter() + 5.0
                while time.perf_counter() < deadline:
                    with lock:
                        if cond._waiters:  # test-only peek
                            break
                    time.sleep(0.001)  # repro: allow[raw-sleep]
                with lock:
                    state["go"] = True
                    cond.notify()
                clock.sleep(100.0)

        threads = [
            threading.Thread(target=waiter),
            threading.Thread(target=sleeper),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        # the waiter woke at t=0 (not t=100) and finished its own sleep
        # before the far deadline
        assert seen == [0.0, 1.0]

    def test_unregistered_thread_sleep_is_instant(self):
        clock = VirtualClock()
        start = time.perf_counter()
        clock.sleep(1000.0)
        assert time.perf_counter() - start < 1.0


class TestRetryPolicy:
    def test_backoff_schedule(self):
        backoff = Backoff(base=0.1, factor=2.0)
        assert [backoff.delay(k) for k in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_backoff_cap(self):
        backoff = Backoff(base=1.0, factor=10.0, max_delay=50.0)
        assert backoff.delay(3) == 50.0

    def test_attempts_sleep_between_retries(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_retries=2, backoff=Backoff(base=1.0))
        stamps = [(attempt, clock.now()) for attempt in policy.attempts(clock)]
        # no sleep before the first attempt; 1s then 2s before retries
        assert stamps == [(0, 0.0), (1, 1.0), (2, 3.0)]

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=3).max_attempts == 4


class TestClockFromName:
    def test_real_returns_shared_instance(self):
        assert clock_from_name("real") is REAL_CLOCK

    def test_virtual_returns_fresh_timelines(self):
        first = clock_from_name("virtual")
        second = clock_from_name("virtual")
        assert isinstance(first, VirtualClock)
        assert first is not second

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown clock"):
            clock_from_name("sundial")


class TestRateLimiterUnderVirtualClock:
    def test_exact_spacing_zero_wall_time(self):
        clock = VirtualClock()
        limiter = HostRateLimiter(min_interval=2.0, clock=clock)
        start = time.perf_counter()
        waits = [limiter.acquire("h") for _ in range(3)]
        assert waits == [0.0, 2.0, 2.0]
        assert clock.now() == 4.0  # requests land at t=0, 2, 4
        assert time.perf_counter() - start < 1.0


class TestSchedulerUnderVirtualClock:
    def test_reboot_after_failure_exact_timestamps(self):
        clock = VirtualClock()
        calls = []

        def flaky():
            calls.append(clock.now())
            if len(calls) < 3:
                raise RuntimeError("boom")
            return "ok"

        scheduler = PeriodicScheduler(
            [JobSpec("flaky", flaky, max_restarts=3, backoff=0.1)],
            clock=clock,
        )
        start = time.perf_counter()
        outcomes = scheduler.run_cycles(1)
        # attempt at t=0 crashes; reboot after 0.1; crash again; reboot
        # after 0.2 more; third attempt succeeds at t=0.3 exactly
        assert calls == pytest.approx([0.0, 0.1, 0.3])
        assert outcomes[0].status == "rebooted"
        assert outcomes[0].attempts == 3
        assert outcomes[0].elapsed == pytest.approx(0.3)
        assert scheduler.stats.reboots == 2
        assert time.perf_counter() - start < 1.0

    def test_cycle_interval_is_virtual(self):
        clock = VirtualClock()
        stamps = []
        scheduler = PeriodicScheduler(
            [JobSpec("tick", lambda: stamps.append(clock.now()))],
            interval=60.0,
            clock=clock,
        )
        scheduler.run_cycles(3)
        assert stamps == [0.0, 60.0, 120.0]

    def test_run_in_threads_virtual_duration(self):
        clock = VirtualClock()
        scheduler = PeriodicScheduler(
            [
                JobSpec("a", lambda: "a"),
                JobSpec("b", lambda: "b"),
            ],
            interval=10.0,
            clock=clock,
        )
        start = time.perf_counter()
        outcomes = scheduler.run_in_threads(duration=35.0)
        wall = time.perf_counter() - start
        # each job runs at t=0, 10, 20, 30 before the 35s window closes
        per_job = {"a": 0, "b": 0}
        for outcome in outcomes:
            per_job[outcome.job] += 1
        assert per_job == {"a": 4, "b": 4}
        assert wall < 2.0


class TestFrontierDrainUnderVirtualClock:
    def test_workers_exit_immediately_on_drain(self):
        # Regression: take(timeout=5.0) used to burn up to 5 real
        # seconds per idle worker after the frontier drained.
        clock = VirtualClock()
        frontier = Frontier(clock=clock)
        frontier.add("only")

        def worker() -> None:
            with clock.worker():
                while True:
                    url = frontier.take()
                    if url is None:
                        return
                    clock.sleep(0.01)
                    frontier.task_done()

        start = time.perf_counter()
        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert all(not thread.is_alive() for thread in threads)
        assert time.perf_counter() - start < 2.0

    def test_close_wakes_blocked_takers(self):
        frontier = Frontier()
        frontier.add("a")
        assert frontier.take() == "a"  # in_flight > 0 keeps takers waiting
        results = []

        def taker() -> None:
            results.append(frontier.take())

        thread = threading.Thread(target=taker)
        thread.start()
        frontier.close()
        thread.join(timeout=5.0)
        assert results == [None]


class TestCrawlDeterminism:
    def _crawl(self):
        clock = VirtualClock()
        web = build_default_web(scenario_count=8, reports_per_site=3)
        transport = SimulatedTransport(
            web, failure_rate=0.2, time_scale=1.0, clock=clock
        )
        engine = CrawlEngine(
            build_all_crawlers(),
            Fetcher(transport, backoff=0.05),
            num_threads=4,
        )
        return engine.crawl()

    @staticmethod
    def _serialize(result) -> str:
        return json.dumps(
            {
                "elapsed": result.elapsed,
                "pages": result.pages_fetched,
                "errors": result.errors,
                "denied": result.denied,
                "documents": [
                    {
                        "url": doc.url,
                        "source": doc.source,
                        "fetched_at": doc.fetched_at,
                        "group_url": doc.group_url,
                        "page_no": doc.page_no,
                        "html": doc.html,
                    }
                    for doc in result.documents
                ],
            },
            sort_keys=True,
        )

    def test_identical_virtual_crawls_are_byte_identical(self):
        first, second = self._crawl(), self._crawl()
        assert first.article_count > 0
        assert self._serialize(first) == self._serialize(second)

    def test_virtual_crawl_costs_no_wall_time(self):
        start = time.perf_counter()
        result = self._crawl()
        wall = time.perf_counter() - start
        assert result.elapsed > wall  # simulated seconds exceed real ones
        assert wall < 10.0


class TestSystemClockWiring:
    def test_virtual_clock_flows_end_to_end(self):
        config = SystemConfig(
            scenario_count=5,
            reports_per_site=2,
            time_scale=1.0,
            clock="virtual",
            connectors=["graph"],
        )
        system = SecurityKG(config)
        assert isinstance(system.clock, VirtualClock)
        assert system.transport.clock is system.clock
        report = system.run_once()
        assert report.reports_stored > 0
        assert report.crawl.elapsed > 0  # virtual seconds were simulated

    def test_real_clock_is_default(self):
        system = SecurityKG(
            SystemConfig(scenario_count=3, reports_per_site=1)
        )
        assert system.clock is REAL_CLOCK

    def test_config_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="unknown clock"):
            SecurityKG(SystemConfig(clock="sundial"))

    def test_cli_clock_flag(self, tmp_path):
        import io

        from repro.cli import main as cli_main

        out = io.StringIO()
        code = cli_main(
            [
                "run",
                "--clock",
                "virtual",
                "--scenarios",
                "4",
                "--reports-per-site",
                "2",
                "--max-articles",
                "3",
            ],
            out=out,
        )
        assert code == 0
        assert "crawled" in out.getvalue()
