"""Tests for the dissemination subsystem (``repro.feeds``).

Covers the ISSUE 9 acceptance criteria: TLP tier filtering, API-key
auth, ETag conditional GETs, cursor-based incremental pulls whose
replayed composition is byte-identical to a fresh full pull (at 1 and
4 partitions), crash/recovery byte-identity, and checkpoint-time
snapshot persistence.
"""

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.feeds import TIER_MAX_TLP, TIERS, FeedPublisher, tier_allows
from repro.obs import make_obs
from repro.ontology.stix import stix_id
from repro.runtime import clock_from_name
from repro.storage import CrashInjector, InjectedCrash
from repro.ui.server import ExplorerAPI

WORKLOAD = dict(
    scenario_count=6,
    reports_per_site=2,
    sources=["ThreatPedia", "MalwareBulletin"],
    connectors=["graph", "search"],
    clock="virtual",
    seed=7,
)

KEYS = {"partner": "partner-key", "internal": "internal-key"}


def make_kg(path=None, partitions=1, faults=None, **overrides):
    config = SystemConfig(
        storage_path=None if path is None else str(path),
        partitions=partitions,
        feed_keys=dict(KEYS),
        **{**WORKLOAD, **overrides},
    )
    return SecurityKG(config, faults=faults)


def bundle_bytes(payload_bundle: dict) -> str:
    return json.dumps(payload_bundle, sort_keys=True, separators=(",", ":"))


def compose(state: dict, response) -> dict:
    """Apply one pull's payload to a client-side object map."""
    payload = response.payload
    if payload["mode"] == "full":
        return {o["id"]: o for o in payload["bundle"]["objects"]}
    for stix_object in payload["objects"]:
        state[stix_object["id"]] = stix_object
    for deleted_id in payload["deleted"]:
        state.pop(deleted_id, None)
    return state


def as_bundle(state: dict) -> dict:
    objects = [state[key] for key in sorted(state)]
    return {
        "type": "bundle",
        "id": stix_id("bundle", str(len(objects))),
        "objects": objects,
    }


class TestTierSemantics:
    def test_tier_vocabulary(self):
        assert TIERS == ("public", "partner", "internal")
        assert TIER_MAX_TLP["public"] == "white"
        assert tier_allows("partner", "amber")
        assert not tier_allows("public", "green")
        with pytest.raises(ValueError):
            tier_allows("vip", "white")

    def test_public_feed_has_no_reports_or_sourcing(self):
        kg = make_kg()
        kg.run_once()
        bundle, _etag = kg.feeds.full_bundle("public")
        for stix_object in bundle["objects"]:
            assert stix_object["type"] != "report"
            assert "x_source" not in stix_object
            assert "x_url" not in stix_object

    def test_tiers_nest(self):
        kg = make_kg()
        kg.run_once()
        counts = {
            tier: len(kg.feeds.full_bundle(tier)[0]["objects"])
            for tier in TIERS
        }
        assert counts["public"] < counts["partner"] <= counts["internal"]

    def test_red_objects_confined_to_internal(self):
        kg = make_kg()
        kg.run_once()
        graph = kg.database.graph
        node = next(n for n in graph.nodes() if n.label == "Malware")
        graph.set_node_properties(node.node_id, {"tlp": "red"})
        kg.feeds.invalidate()
        partner_ids = {
            o["id"] for o in kg.feeds.full_bundle("partner")[0]["objects"]
        }
        internal_ids = {
            o["id"] for o in kg.feeds.full_bundle("internal")[0]["objects"]
        }
        red_ids = internal_ids - partner_ids
        assert red_ids  # the red malware (+ its relationships) vanished


class TestAuth:
    def test_public_is_open(self):
        kg = make_kg()
        assert kg.feeds.authorize("public", None) is None

    def test_missing_key_401(self):
        kg = make_kg()
        status, _message = kg.feeds.authorize("partner", None)
        assert status == 401

    def test_wrong_key_403(self):
        kg = make_kg()
        status, _message = kg.feeds.authorize("partner", "nope")
        assert status == 403

    def test_higher_tier_key_grants_lower(self):
        kg = make_kg()
        assert kg.feeds.authorize("partner", KEYS["internal"]) is None
        status, _message = kg.feeds.authorize("internal", KEYS["partner"])
        assert status == 403

    def test_unconfigured_tier_is_disabled(self):
        publisher = FeedPublisher(
            graph_source=lambda: None, stamp_source=tuple, keys=None
        )
        status, message = publisher.authorize("internal", "anything")
        assert status == 403 and "not enabled" in message


class TestHttpApi:
    @pytest.fixture(scope="class")
    def api(self):
        kg = make_kg()
        kg.run_once()
        return ExplorerAPI(kg)

    def test_feed_index(self, api):
        status, payload, _headers = api.handle_full("GET", "/feeds")
        assert status == 200
        assert set(payload["tiers"]) == set(TIERS)
        assert payload["tiers"]["public"]["auth"] == "open"
        assert payload["tiers"]["internal"]["auth"] == "api-key"

    def test_public_pull(self, api):
        status, payload, headers = api.handle_full("GET", "/feeds/public")
        assert status == 200 and payload["mode"] == "full"
        assert headers["ETag"] and headers["X-Feed-Cursor"]

    def test_protected_tier_requires_key(self, api):
        status, payload, _headers = api.handle_full("GET", "/feeds/internal")
        assert status == 401 and "error" in payload

    def test_wrong_key_rejected(self, api):
        status, _payload, _headers = api.handle_full(
            "GET", "/feeds/internal", headers={"X-API-Key": "nope"}
        )
        assert status == 403

    def test_key_header_and_query_param(self, api):
        status, _payload, _headers = api.handle_full(
            "GET", "/feeds/internal",
            headers={"x-api-key": KEYS["internal"]},  # case-insensitive
        )
        assert status == 200
        status, _payload, _headers = api.handle_full(
            "GET", f"/feeds/internal?key={KEYS['internal']}"
        )
        assert status == 200

    def test_etag_conditional_get(self, api):
        _status, _payload, headers = api.handle_full("GET", "/feeds/public")
        status, payload, headers2 = api.handle_full(
            "GET", "/feeds/public", headers={"If-None-Match": headers["ETag"]}
        )
        assert status == 304 and payload is None
        assert headers2["ETag"] == headers["ETag"]

    def test_cursor_roundtrip_over_http(self, api):
        _status, _payload, headers = api.handle_full("GET", "/feeds/public")
        status, payload, _headers = api.handle_full(
            "GET", f"/feeds/public?cursor={headers['X-Feed-Cursor']}"
        )
        assert status == 200 and payload["mode"] == "delta"
        assert payload["objects"] == [] and payload["deleted"] == []

    def test_unknown_tier_400(self, api):
        status, payload, _headers = api.handle_full("GET", "/feeds/vip")
        assert status == 400 and "unknown feed tier" in payload["error"]

    def test_post_feeds_404(self, api):
        status, _payload, _headers = api.handle_full("POST", "/feeds/public")
        assert status == 404


class TestCursors:
    def test_bare_seq_cursor(self):
        kg = make_kg()
        first = kg.feeds.pull("internal")
        kg.run_once()
        # "0" is the documented journal-seq form of the cursor contract
        delta = kg.feeds.pull("internal", cursor="0")
        assert delta.payload["mode"] == "delta"
        state = compose({}, first)
        state = compose(state, delta)
        full = kg.feeds.pull("internal")
        assert bundle_bytes(as_bundle(state)) == bundle_bytes(
            full.payload["bundle"]
        )

    def test_cursor_of_other_tier_rejected(self):
        kg = make_kg()
        response = kg.feeds.pull("public")
        with pytest.raises(ValueError):
            kg.feeds.pull("internal", cursor=response.cursor)

    def test_malformed_cursor_rejected(self):
        kg = make_kg()
        with pytest.raises(ValueError):
            kg.feeds.pull("public", cursor="!!not-base64!!")

    def test_expired_cursor_falls_back_to_full(self):
        kg = make_kg(feed_history=1)
        stale = kg.feeds.pull("internal")
        graph = kg.database.graph
        for index in range(3):  # three distinct refreshes age the history
            graph.create_node("Malware", {"name": f"gen-{index}"})
            kg.feeds.invalidate()
            kg.feeds.pull("internal")
        resync = kg.feeds.pull("internal", cursor=stale.cursor)
        assert resync.payload["mode"] == "full"

    def test_metrics_counters(self):
        obs = make_obs(clock_from_name("virtual"))
        config = SystemConfig(feed_keys=dict(KEYS), **WORKLOAD)
        kg = SecurityKG(config, obs=obs)
        kg.run_once()
        response = kg.feeds.pull("public")
        kg.feeds.pull("public", etag=response.etag)
        snapshot = obs.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["feeds.pulls"]["tier=public"] == 1
        assert counters["feeds.cache_hits"]["tier=public"] == 1
        assert counters["feeds.bytes_served"]["tier=public"] > 0


class TestIncrementalComposition:
    """The acceptance criterion: full-at-S == full-at-S0 + replayed
    deltas, byte-identical per tier, at 1 and 4 partitions."""

    @pytest.mark.parametrize("partitions", [1, 4])
    def test_replay_composition_matches_full(self, tmp_path, partitions):
        kg = make_kg(tmp_path / "state", partitions=partitions)
        states = {tier: {} for tier in TIERS}
        cursors = {}
        for tier in TIERS:
            response = kg.feeds.pull(tier)
            states[tier] = compose(states[tier], response)
            cursors[tier] = response.cursor
        for step in range(3):
            if step == 0:
                kg.run_once(max_articles=3)
            elif step == 1:
                kg.run_once()
            else:
                kg.run_fusion()
            for tier in TIERS:
                response = kg.feeds.pull(tier, cursor=cursors[tier])
                assert response.payload["mode"] == "delta"
                states[tier] = compose(states[tier], response)
                cursors[tier] = response.cursor
        for tier in TIERS:
            full = kg.feeds.pull(tier)
            assert bundle_bytes(as_bundle(states[tier])) == bundle_bytes(
                full.payload["bundle"]
            ), f"tier {tier} diverged at {partitions} partition(s)"
        kg.close()

    def test_fusion_deletes_propagate(self, tmp_path):
        # this source mix is known to produce a merge group at seed 7
        kg = make_kg(
            tmp_path / "state",
            sources=["ThreatPedia", "MalwareVault", "OTX Mirror"],
        )
        kg.run_once()
        before = kg.feeds.pull("internal")
        report = kg.run_fusion()
        if report.groups_merged == 0:
            pytest.skip("seeded workload produced no merge groups")
        delta = kg.feeds.pull("internal", cursor=before.cursor)
        assert delta.payload["mode"] == "delta"
        assert delta.payload["deleted"]  # merged-away nodes disappear
        state = compose(
            {o["id"]: o for o in before.payload["bundle"]["objects"]}, delta
        )
        full = kg.feeds.pull("internal")
        assert bundle_bytes(as_bundle(state)) == bundle_bytes(
            full.payload["bundle"]
        )
        kg.close()


class TestCrashRecovery:
    def test_recovered_partition_serves_identical_bytes(self, tmp_path):
        baseline = make_kg(tmp_path / "clean", partitions=4)
        baseline.run_once()
        baseline.checkpoint()
        expected = {
            tier: bundle_bytes(baseline.feeds.full_bundle(tier)[0])
            for tier in TIERS
        }
        baseline.close()

        crashed = make_kg(
            tmp_path / "crashed",
            partitions=4,
            faults=CrashInjector("commit.after-fsync", at_hit=1),
        )
        with pytest.raises(InjectedCrash):
            crashed.run_once()
        crashed.close()

        recovered = make_kg(tmp_path / "crashed", partitions=4)
        recovered.run_once()
        recovered.checkpoint()
        for tier in TIERS:
            assert (
                bundle_bytes(recovered.feeds.full_bundle(tier)[0])
                == expected[tier]
            ), f"tier {tier} diverged after crash recovery"
        recovered.close()

    def test_feeds_snapshot_crash_point_skips_steps(self, tmp_path):
        kg = make_kg(
            tmp_path / "state",
            faults=CrashInjector("checkpoint.feeds-snapshot"),
        )
        kg.run_once()
        with pytest.raises(InjectedCrash):
            kg.checkpoint()
        # the crash fired before the post-checkpoint steps ran
        assert not (tmp_path / "state" / "feeds").exists()
        kg.close()
        # ... and recovery simply re-runs them at the next checkpoint
        reopened = make_kg(tmp_path / "state")
        reopened.run_once()
        reopened.checkpoint()
        assert sorted(
            path.name for path in (tmp_path / "state" / "feeds").iterdir()
        ) == [f"feed-{tier}.json" for tier in sorted(TIERS)]
        reopened.close()


class TestSnapshotPersistence:
    def test_cursors_survive_restart(self, tmp_path):
        kg = make_kg(tmp_path / "state")
        kg.run_once()
        response = kg.feeds.pull("internal")
        kg.checkpoint()  # persists the per-tier snapshots
        kg.close()

        reopened = make_kg(tmp_path / "state")
        cached = reopened.feeds.pull("internal", etag=response.etag)
        assert cached.status == 304  # same state hash across restarts
        delta = reopened.feeds.pull("internal", cursor=response.cursor)
        assert delta.payload["mode"] == "delta"
        assert delta.payload["objects"] == [] and delta.payload["deleted"] == []
        reopened.close()

    def test_snapshot_files_are_valid_json(self, tmp_path):
        kg = make_kg(tmp_path / "state")
        kg.run_once()
        kg.checkpoint()
        etag = kg.feeds.pull("public").etag
        data = json.loads(
            (tmp_path / "state" / "feeds" / "feed-public.json").read_text()
        )
        assert data["etag"] == etag
        assert data["history"] and data["objects"]
        kg.close()
