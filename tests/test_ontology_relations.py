"""Unit tests for relation vocabulary, verb normalisation and schema."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ontology import (
    SCHEMA,
    Entity,
    EntityType,
    Relation,
    RelationType,
    VERB_TO_RELATION,
    allowed_tail_types,
    check_relation,
    normalize_verb,
    validate_relation,
)


def _rel(head_type, rel_type, tail_type):
    return Relation(
        head=Entity(head_type, "head"),
        type=rel_type,
        tail=Entity(tail_type, "tail"),
    )


class TestNormalizeVerb:
    @pytest.mark.parametrize(
        ("verb", "expected"),
        [
            ("drop", RelationType.DROPS),
            ("drops", RelationType.DROPS),
            ("dropped", RelationType.DROPS),
            ("dropping", RelationType.DROPS),
            ("use", RelationType.USES),
            ("uses", RelationType.USES),
            ("used", RelationType.USES),
            ("encrypts", RelationType.ENCRYPTS),
            ("encrypted", RelationType.ENCRYPTS),
            ("beaconing", RelationType.COMMUNICATES_WITH),
            ("exfiltrates", RelationType.SENDS),
            ("leveraged", RelationType.USES),
            ("Connects", RelationType.CONNECTS_TO),
            ("TARGETS", RelationType.TARGETS),
        ],
    )
    def test_inflections(self, verb, expected):
        assert normalize_verb(verb) == expected

    def test_unknown_verb_falls_back(self):
        assert normalize_verb("frobnicates") == RelationType.RELATED_TO

    @given(st.sampled_from(sorted(VERB_TO_RELATION)))
    def test_every_base_verb_maps_to_itself(self, verb):
        assert normalize_verb(verb) == VERB_TO_RELATION[verb]


class TestSchema:
    def test_every_relation_type_has_schema(self):
        assert set(SCHEMA) == set(RelationType)

    def test_legal_relation_passes(self):
        rel = _rel(EntityType.MALWARE, RelationType.DROPS, EntityType.FILE_NAME)
        assert check_relation(rel) is None
        assert validate_relation(rel) is rel

    def test_illegal_head_rewritten(self):
        rel = _rel(EntityType.FILE_NAME, RelationType.DROPS, EntityType.MALWARE)
        assert check_relation(rel) is not None
        coerced = validate_relation(rel)
        assert coerced.type == RelationType.RELATED_TO
        assert coerced.attributes["raw_type"] == "DROPS"

    def test_illegal_tail_rewritten(self):
        rel = _rel(EntityType.MALWARE, RelationType.ENCRYPTS, EntityType.IP)
        coerced = validate_relation(rel)
        assert coerced.type == RelationType.RELATED_TO

    def test_related_to_accepts_anything(self):
        for head in EntityType:
            rel = _rel(head, RelationType.RELATED_TO, EntityType.MALWARE)
            assert check_relation(rel) is None

    def test_ioc_indicates_malware(self):
        rel = _rel(EntityType.HASH, RelationType.INDICATES, EntityType.MALWARE)
        assert check_relation(rel) is None

    def test_allowed_tail_types(self):
        tails = allowed_tail_types(EntityType.MALWARE, RelationType.CONNECTS_TO)
        assert EntityType.IP in tails
        assert EntityType.FILE_NAME not in tails
        assert allowed_tail_types(EntityType.IP, RelationType.CONNECTS_TO) == frozenset()

    @given(
        st.sampled_from(list(EntityType)),
        st.sampled_from(list(RelationType)),
        st.sampled_from(list(EntityType)),
    )
    def test_validate_always_yields_legal_relation(self, head, rel_type, tail):
        coerced = validate_relation(_rel(head, rel_type, tail))
        assert check_relation(coerced) is None


class TestRelationSerialization:
    def test_round_trip(self):
        rel = Relation(
            head=Entity(EntityType.MALWARE, "wannacry"),
            type=RelationType.DROPS,
            tail=Entity(EntityType.FILE_NAME, "tasksche.exe"),
            attributes={"verb": "dropped"},
            provenance={"report_id": "r1", "sentence": "it dropped it"},
        )
        assert Relation.from_dict(rel.to_dict()) == rel

    def test_key_ignores_attributes(self):
        a = Relation(
            Entity(EntityType.MALWARE, "x"),
            RelationType.DROPS,
            Entity(EntityType.FILE_NAME, "y"),
            attributes={"a": 1},
        )
        b = Relation(
            Entity(EntityType.MALWARE, "X"),
            RelationType.DROPS,
            Entity(EntityType.FILE_NAME, "Y"),
            attributes={"b": 2},
        )
        assert a.key == b.key
