"""Tests for the graph explorer and the JSON API."""

import json
import urllib.request

import pytest

from repro import SecurityKG, SystemConfig
from repro.graphdb import PropertyGraph
from repro.ui import ExplorerAPI, ExplorerServer, GraphExplorer, ViewConfig


@pytest.fixture
def star_graph():
    graph = PropertyGraph()
    hub = graph.create_node("Malware", {"name": "hub"})
    ring = []
    for i in range(6):
        node = graph.create_node("IP", {"name": f"ip{i}"})
        graph.create_edge(hub.node_id, "CONNECTS_TO", node.node_id)
        ring.append(node)
    far = graph.create_node("Tool", {"name": "far"})
    graph.create_edge(ring[0].node_id, "RELATED_TO", far.node_id)
    return graph, hub, ring, far


class TestExplorer:
    def test_show_and_snapshot(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        snapshot = explorer.snapshot()
        assert len(snapshot["nodes"]) == 1
        assert snapshot["nodes"][0]["name"] == "hub"
        assert {"x", "y", "label"} <= set(snapshot["nodes"][0])

    def test_expand_spawns_missing_neighbors(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        spawned = explorer.expand(hub.node_id)
        assert len(spawned) == 6
        assert len(explorer.snapshot()["nodes"]) == 7
        assert len(explorer.snapshot()["edges"]) == 6

    def test_expand_respects_max_neighbors(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph, ViewConfig(max_neighbors=3))
        explorer.show([hub.node_id])
        assert len(explorer.expand(hub.node_id)) == 3

    def test_expand_respects_max_nodes(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph, ViewConfig(max_nodes=4))
        explorer.show([hub.node_id])
        assert len(explorer.expand(hub.node_id)) == 3  # 1 + 3 = budget

    def test_collapse_hides_downstream(self, star_graph):
        graph, hub, ring, far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        explorer.expand(hub.node_id)
        explorer.expand(ring[0].node_id)  # spawns 'far'
        assert far.node_id in explorer.state.node_ids
        hidden = explorer.collapse(hub.node_id)
        assert far.node_id in hidden  # downstream of the expansion tree
        assert explorer.state.node_ids == {hub.node_id}

    def test_collapse_keeps_nodes_from_other_routes(self, star_graph):
        graph, hub, ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id, ring[1].node_id])  # ring[1] found by search
        explorer.expand(hub.node_id)
        explorer.collapse(hub.node_id)
        assert ring[1].node_id in explorer.state.node_ids

    def test_toggle_expands_then_collapses(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        assert explorer.toggle(hub.node_id) == "expanded"
        assert explorer.toggle(hub.node_id) == "collapsed"

    def test_drag_locks_node(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        explorer.expand(hub.node_id)
        explorer.drag(hub.node_id, 10.0, 20.0)
        assert explorer.state.positions[hub.node_id] == (10.0, 20.0)
        snapshot = explorer.snapshot()
        (hub_view,) = [n for n in snapshot["nodes"] if n["id"] == hub.node_id]
        assert hub_view["pinned"]

    def test_back_restores_previous_view(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        explorer.expand(hub.node_id)
        assert explorer.back()
        assert explorer.state.node_ids == {hub.node_id}

    def test_back_on_empty_history(self, star_graph):
        graph, _hub, _ring, _far = star_graph
        assert GraphExplorer(graph).back() is False

    def test_random_subgraph_view(self, star_graph):
        graph, _hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph, ViewConfig(max_nodes=5))
        explorer.show_random(seed=1)
        assert 0 < len(explorer.snapshot()["nodes"]) <= 5

    def test_expand_invisible_node_raises(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        with pytest.raises(KeyError):
            explorer.expand(hub.node_id)


class TestSvgRendering:
    def _view(self, star_graph):
        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        explorer.expand(hub.node_id)
        return explorer

    def test_svg_structure(self, star_graph):
        from repro.ui import render_svg

        explorer = self._view(star_graph)
        svg = render_svg(explorer.snapshot())
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") >= len(explorer.snapshot()["nodes"])
        assert svg.count("<line") == len(explorer.snapshot()["edges"])

    def test_colors_by_label_and_legend(self, star_graph):
        from repro.ui import LABEL_COLORS, render_svg

        explorer = self._view(star_graph)
        svg = render_svg(explorer.snapshot())
        assert LABEL_COLORS["Malware"] in svg
        assert LABEL_COLORS["IP"] in svg
        assert ">Malware</text>" in svg  # legend entry

    def test_pinned_ring(self, star_graph):
        from repro.ui import render_svg

        graph, hub, _ring, _far = star_graph
        explorer = GraphExplorer(graph)
        explorer.show([hub.node_id])
        explorer.drag(hub.node_id, 5.0, 5.0)
        svg = render_svg(explorer.snapshot())
        assert "stroke-dasharray" in svg

    def test_names_escaped(self, star_graph):
        from repro.graphdb import PropertyGraph
        from repro.ui import render_svg

        graph = PropertyGraph()
        node = graph.create_node("Malware", {"name": 'evil<&>"name'})
        explorer = GraphExplorer(graph)
        explorer.show([node.node_id])
        svg = render_svg(explorer.snapshot())
        assert "evil<&>" not in svg
        assert "evil&lt;&amp;&gt;" in svg

    def test_save_svg(self, star_graph, tmp_path):
        from repro.ui import save_svg

        explorer = self._view(star_graph)
        path = save_svg(explorer.snapshot(), tmp_path / "view.svg")
        assert path.read_text().startswith("<svg")

    def test_empty_view(self):
        from repro.ui import render_svg

        svg = render_svg({"nodes": [], "edges": []})
        assert svg.startswith("<svg")


@pytest.fixture(scope="module")
def api_system():
    kg = SecurityKG(
        SystemConfig(
            scenario_count=6,
            reports_per_site=3,
            sources=["ThreatPedia", "SecureListing"],
        )
    )
    kg.run_once()
    return kg


class TestExplorerAPI:
    def test_search_focuses_view(self, api_system):
        api = ExplorerAPI(api_system)
        malware = next(iter(api_system.graph.nodes("Malware")))
        status, payload = api.handle(
            "POST", "/api/search", {"query": malware.properties["name"]}
        )
        assert status == 200
        assert payload["view"]["nodes"]
        assert payload["reports"]

    def test_cypher_endpoint(self, api_system):
        api = ExplorerAPI(api_system)
        status, payload = api.handle(
            "POST", "/api/cypher", {"query": "MATCH (n) RETURN count(*) AS c"}
        )
        assert status == 200
        assert payload["rows"][0]["c"] == api_system.graph.node_count

    def test_cypher_pagination_round_trip(self, api_system):
        api = ExplorerAPI(api_system)
        query = "MATCH (n) RETURN n.name"
        full_status, full = api.handle("POST", "/api/cypher", {"query": query})
        assert full_status == 200

        rows = []
        cursor = None
        pages = 0
        while True:
            body = {"query": query, "page_size": 5}
            if cursor is not None:
                body["cursor"] = cursor
            status, payload = api.handle("POST", "/api/cypher", body)
            assert status == 200
            assert len(payload["rows"]) <= 5
            rows.extend(payload["rows"])
            pages += 1
            cursor = payload["cursor"]
            if cursor is None:
                break
            # the token is an opaque URL-safe string, not raw JSON
            assert isinstance(cursor, str)
            assert "{" not in cursor
        assert pages > 1
        assert sorted(map(repr, rows)) == sorted(map(repr, full["rows"]))

    def test_cypher_cursor_rejected_for_other_query(self, api_system):
        api = ExplorerAPI(api_system)
        query = "MATCH (n) RETURN n.name"
        status, payload = api.handle(
            "POST", "/api/cypher", {"query": query, "page_size": 2}
        )
        assert status == 200 and payload["cursor"]
        status, payload = api.handle(
            "POST",
            "/api/cypher",
            {
                "query": "MATCH (m:Malware) RETURN m.name",
                "page_size": 2,
                "cursor": payload["cursor"],
            },
        )
        assert status == 400 and "cursor" in payload["error"]

    def test_cypher_malformed_cursor_400(self, api_system):
        api = ExplorerAPI(api_system)
        status, payload = api.handle(
            "POST",
            "/api/cypher",
            {
                "query": "MATCH (n) RETURN n.name",
                "page_size": 2,
                "cursor": "not-a-token",
            },
        )
        assert status == 400 and "cursor" in payload["error"]

    def test_cypher_explain_over_api(self, api_system):
        api = ExplorerAPI(api_system)
        status, payload = api.handle(
            "POST",
            "/api/cypher",
            {"query": "EXPLAIN MATCH (m:Malware) RETURN m.name"},
        )
        assert status == 200
        assert payload["rows"] and all("plan" in row for row in payload["rows"])

    def test_expand_collapse_back_flow(self, api_system):
        api = ExplorerAPI(api_system)
        malware = next(iter(api_system.graph.nodes("Malware")))
        api.handle("POST", "/api/search", {"query": malware.properties["name"]})
        node_id = api.explorer.snapshot()["nodes"][0]["id"]
        status, payload = api.handle("POST", "/api/expand", {"id": node_id})
        assert status == 200 and payload["spawned"]
        status, payload = api.handle("POST", "/api/collapse", {"id": node_id})
        assert status == 200
        status, payload = api.handle("POST", "/api/back", {})
        assert status == 200 and payload["moved"]

    def test_stats_and_graph_endpoints(self, api_system):
        api = ExplorerAPI(api_system)
        status, stats = api.handle("GET", "/api/stats")
        assert status == 200 and stats["nodes"] > 0
        status, view = api.handle("GET", "/api/graph")
        assert status == 200 and "nodes" in view

    def test_unknown_route_404(self, api_system):
        api = ExplorerAPI(api_system)
        status, _payload = api.handle("GET", "/api/nope")
        assert status == 404

    def test_bad_request_400(self, api_system):
        api = ExplorerAPI(api_system)
        status, payload = api.handle("POST", "/api/expand", {"id": 999999})
        assert status == 400 and "error" in payload

    def test_http_server_round_trip(self, api_system):
        server = ExplorerServer(ExplorerAPI(api_system)).start()
        try:
            host, port = server.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/api/stats", timeout=5
            ) as response:
                stats = json.loads(response.read())
            assert stats["nodes"] == api_system.graph.node_count

            request = urllib.request.Request(
                f"http://{host}:{port}/api/cypher",
                data=json.dumps(
                    {"query": "MATCH (n) RETURN count(*) AS c"}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=5) as response:
                payload = json.loads(response.read())
            assert payload["rows"][0]["c"] == api_system.graph.node_count
        finally:
            server.stop()
