"""Unit tests for the lemmatizer and POS tagger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.lemma import lemmatize
from repro.nlp.pos import is_verb_like, tag
from repro.nlp.tokenize import tokenize_words


class TestLemmatize:
    @pytest.mark.parametrize(
        ("word", "lemma"),
        [
            ("drops", "drop"),
            ("dropped", "drop"),
            ("dropping", "drop"),
            ("uses", "use"),
            ("used", "use"),
            ("encrypts", "encrypt"),
            ("encrypted", "encrypt"),
            ("utilizes", "utilize"),
            ("modified", "modify"),
            ("families", "family"),
            ("vulnerabilities", "vulnerability"),
            ("was", "be"),
            ("written", "write"),
            ("connects", "connect"),
            ("beacons", "beacon"),
            ("analysis", "analysis"),
            ("process", "process"),
            ("hosts", "host"),
            ("exfiltrates", "exfiltrate"),
            ("propagates", "propagate"),
            ("Targets", "target"),
        ],
    )
    def test_inflections(self, word, lemma):
        assert lemmatize(word) == lemma

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12))
    def test_always_lowercase_and_nonempty(self, word):
        lemma = lemmatize(word)
        assert lemma
        assert lemma == lemma.lower()


def tags_for(text: str) -> list[tuple[str, str]]:
    tokens = tokenize_words(text)
    return list(zip([t.text for t in tokens], tag(tokens)))


class TestPosTagger:
    def test_simple_svo(self):
        tagged = dict(tags_for("The malware drops files"))
        assert tagged["The"] == "DT"
        assert tagged["drops"] == "VBZ"
        assert tagged["files"] in ("NNS", "NN")

    def test_ioc_tokens_are_nnp(self):
        tokens = tokenize_words("It beacons to 10.0.0.1 today")
        tags = tag(tokens)
        ip_index = [t.text for t in tokens].index("10.0.0.1")
        assert tags[ip_index] == "NNP"

    def test_participle_before_noun_is_adjectival(self):
        tagged = dict(tags_for("The actor employs scheduled task persistence"))
        assert tagged["scheduled"] == "JJ"
        assert tagged["employs"] == "VBZ"

    def test_main_verb_not_adjectivised(self):
        tagged = dict(tags_for("The ransomware dropped tasksche.exe on hosts"))
        assert tagged["dropped"] == "VBD"

    def test_to_plus_verb_is_infinitival(self):
        tagged = tags_for("It tries to establish persistence")
        as_dict = dict(tagged)
        assert as_dict["to"] == "TO"

    def test_short_ic_word_is_not_adjective(self):
        tagged = dict(tags_for("It executed wmic quickly"))
        assert tagged["wmic"] != "JJ"

    def test_numbers_are_cd(self):
        tagged = dict(tags_for("over port 443 now"))
        assert tagged["443"] == "CD"

    def test_punctuation(self):
        tagged = dict(tags_for("Stop . now"))
        assert tagged["."] == "PUNCT"

    def test_is_verb_like(self):
        assert is_verb_like("drops")
        assert is_verb_like("exfiltrates")
        assert is_verb_like("dropped")
        assert not is_verb_like("wannacry")
        assert not is_verb_like("infrastructure")

    def test_tag_length_matches_tokens(self):
        tokens = tokenize_words("a b c d e")
        assert len(tag(tokens)) == len(tokens)
