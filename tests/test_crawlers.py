"""Unit and integration tests for the crawler framework."""

import threading
import time

import pytest

from repro.crawlers import (
    CRAWLER_REGISTRY,
    CrawlEngine,
    CrawlState,
    FetchDenied,
    FetchFailed,
    Fetcher,
    Frontier,
    HostRateLimiter,
    JobSpec,
    PeriodicScheduler,
    RobotsPolicy,
    build_all_crawlers,
    crawler_for,
    path_of,
    resolve_url,
)
from repro.runtime import VirtualClock
from repro.websim import SimulatedTransport, TransportError


class TestRobots:
    POLICY = RobotsPolicy.parse(
        """
        # comment
        User-agent: *
        Disallow: /private/
        Allow: /private/press/
        Crawl-delay: 1.5

        User-agent: badbot
        Disallow: /
        """
    )

    def test_disallow_prefix(self):
        assert not self.POLICY.allowed("/private/data")
        assert self.POLICY.allowed("/public/x")

    def test_allow_overrides_longer_match(self):
        assert self.POLICY.allowed("/private/press/release")

    def test_specific_agent_group(self):
        assert not self.POLICY.allowed("/anything", agent="badbot")
        assert self.POLICY.allowed("/public", agent="goodbot")

    def test_crawl_delay(self):
        assert self.POLICY.crawl_delay() == 1.5

    def test_empty_disallow_allows_all(self):
        policy = RobotsPolicy.parse("User-agent: *\nDisallow:\n")
        assert policy.allowed("/anything")

    def test_allow_all_when_missing(self):
        assert RobotsPolicy.allow_all().allowed("/private/x")

    def test_path_of(self):
        assert path_of("https://h.example/a/b?c=1") == "/a/b?c=1"
        assert path_of("https://h.example") == "/"


class TestResolveUrl:
    def test_absolute_passthrough(self):
        assert resolve_url("https://a/x", "https://b/y") == "https://b/y"

    def test_rooted(self):
        assert resolve_url("https://a.example/x/y", "/z") == "https://a.example/z"

    def test_query_only(self):
        assert (
            resolve_url("https://a.example/x?page=1", "?page=2")
            == "https://a.example/x?page=2"
        )

    def test_relative(self):
        assert resolve_url("https://a.example/dir/page", "next") == (
            "https://a.example/dir/next"
        )


class TestFrontier:
    def test_dedup(self):
        frontier = Frontier()
        assert frontier.add("u1")
        assert not frontier.add("u1")
        assert len(frontier) == 1

    def test_priority_band(self):
        frontier = Frontier()
        frontier.add("normal")
        frontier.add("urgent", priority=True)
        assert frontier.take() == "urgent"
        frontier.task_done()

    def test_mark_seen_blocks_future_add(self):
        frontier = Frontier()
        frontier.mark_seen("u")
        assert not frontier.add("u")

    def test_take_returns_none_when_drained(self):
        frontier = Frontier()
        frontier.add("only")
        assert frontier.take() == "only"
        done = []

        def finish():
            time.sleep(0.02)
            frontier.task_done()
            done.append(True)

        threading.Thread(target=finish).start()
        assert frontier.take(timeout=2.0) is None
        assert done

    def test_worker_can_enqueue_while_in_flight(self):
        frontier = Frontier()
        frontier.add("a")
        url = frontier.take()
        frontier.add("b")  # discovered while processing 'a'
        frontier.task_done()
        assert frontier.take() == "b"


class TestRateLimiter:
    def test_enforces_interval(self):
        clock = VirtualClock()
        limiter = HostRateLimiter(min_interval=1.0, clock=clock)
        assert limiter.acquire("h") == 0.0
        assert limiter.acquire("h") == 1.0
        assert clock.now() == 1.0

    def test_hosts_are_independent(self):
        clock = VirtualClock()
        limiter = HostRateLimiter(min_interval=1.0, clock=clock)
        limiter.acquire("a")
        assert limiter.acquire("b") == 0.0
        assert clock.now() == 0.0

    def test_robots_delay_applies(self):
        clock = VirtualClock()
        limiter = HostRateLimiter(min_interval=0.0, clock=clock)
        limiter.set_host_delay("h", 2.0)
        assert limiter.acquire("h") == 0.0
        assert limiter.acquire("h") == 2.0
        assert clock.now() == 2.0


class TestFetcher:
    def test_retries_transient_failures(self, small_web):
        transport = SimulatedTransport(small_web, time_scale=0.0, failure_rate=0.4)
        fetcher = Fetcher(transport, max_retries=8, backoff=0.0)
        response = fetcher.fetch(small_web.sites[0].index_url)
        assert response.ok
        assert fetcher.stats.snapshot()["retries"] >= 0

    def test_gives_up_after_budget(self, small_web):
        transport = SimulatedTransport(small_web, time_scale=0.0, failure_rate=1.0)
        fetcher = Fetcher(transport, max_retries=2, backoff=0.0)
        with pytest.raises(FetchFailed):
            fetcher.fetch(small_web.sites[0].index_url)
        assert fetcher.stats.snapshot()["failures"] == 1

    def test_robots_denied(self, small_web):
        site = small_web.sites[0]
        fetcher = Fetcher(SimulatedTransport(small_web, time_scale=0.0))
        with pytest.raises(FetchDenied):
            fetcher.fetch(f"{site.base_url}/private/internal")
        assert fetcher.stats.snapshot()["denied"] == 1

    def test_robots_can_be_disabled(self, small_web):
        site = small_web.sites[0]
        fetcher = Fetcher(
            SimulatedTransport(small_web, time_scale=0.0), respect_robots=False
        )
        assert fetcher.fetch(f"{site.base_url}/private/internal").ok

    def test_404_returned_not_retried(self, small_web):
        fetcher = Fetcher(SimulatedTransport(small_web, time_scale=0.0))
        response = fetcher.fetch(f"{small_web.sites[0].base_url}/nope")
        assert response.status == 404
        assert fetcher.stats.snapshot()["attempts"] == 1


class TestCrawlerClasses:
    def test_registry_covers_all_sites(self, small_web):
        assert {site.name for site in small_web.sites} == set(CRAWLER_REGISTRY)

    def test_classify(self):
        crawler = crawler_for("ThreatPedia")
        base = crawler.base_url
        assert crawler.classify(f"{base}/index/1") == "index"
        assert crawler.classify(f"{base}/threats/x-1") == "article"
        assert crawler.classify(f"{base}/threats/x-1?page=2") == "continuation"
        assert crawler.classify(f"{base}/private/x") == "other"
        assert crawler.classify("https://elsewhere.example/threats/x") == "other"

    def test_group_url_and_page_no(self):
        crawler = crawler_for("ThreatPedia")
        url = f"{crawler.base_url}/threats/x-1?page=2"
        assert crawler.group_url(url).endswith("/threats/x-1")
        assert crawler.page_no(url) == 2

    def test_unknown_site_raises(self):
        with pytest.raises(KeyError):
            crawler_for("NoSuchSite")

    def test_link_extraction_from_live_index(self, small_web):
        from repro.htmlparse import parse

        site = small_web.sites[0]
        crawler = crawler_for(site.name)
        doc = parse(site.pages()[site.index_url])
        links = crawler.extract_article_links(site.index_url, doc)
        assert links
        assert all(crawler.classify(link) == "article" for link in links)

    def test_pagination_followed(self, small_web):
        from repro.htmlparse import parse

        site = small_web.sites[0]  # 5 articles, page size 10 -> one page
        crawler = crawler_for(site.name)
        doc = parse(site.pages()[site.index_url])
        assert crawler.extract_next_index(site.index_url, doc) is None


class TestCrawlEngine:
    def test_collects_everything(self, small_web):
        engine = CrawlEngine(
            build_all_crawlers(),
            Fetcher(SimulatedTransport(small_web, time_scale=0.0)),
            num_threads=8,
        )
        result = engine.crawl()
        assert result.article_count == small_web.total_reports
        assert not result.errors

    def test_multipage_reports_fetched(self, small_web):
        engine = CrawlEngine(
            build_all_crawlers(["ThreatPedia"]),
            Fetcher(SimulatedTransport(small_web, time_scale=0.0)),
            num_threads=2,
        )
        result = engine.crawl()
        pages = [d for d in result.documents if d.page_no == 2]
        site = small_web.site_by_name("ThreatPedia")
        assert len(pages) == site.report_count

    def test_max_articles_cap(self, small_web):
        engine = CrawlEngine(
            build_all_crawlers(["SecureListing"]),
            Fetcher(SimulatedTransport(small_web, time_scale=0.0)),
            num_threads=2,
            max_articles=2,
        )
        assert engine.crawl().article_count == 2

    def test_state_persists_and_dedupes(self, small_web, tmp_path):
        path = tmp_path / "state.json"
        state = CrawlState(path)
        CrawlEngine(
            build_all_crawlers(["SecureListing"]),
            Fetcher(SimulatedTransport(small_web, time_scale=0.0)),
            num_threads=2,
            state=state,
        ).crawl()
        state.save()
        reloaded = CrawlState(path)
        result = CrawlEngine(
            build_all_crawlers(["SecureListing"]),
            Fetcher(SimulatedTransport(small_web, time_scale=0.0)),
            num_threads=2,
            state=reloaded,
        ).crawl()
        assert result.article_count == 0
        assert reloaded.last_crawl("SecureListing") is not None


class TestScheduler:
    def test_ok_job(self):
        scheduler = PeriodicScheduler([JobSpec("ok", lambda: 42)])
        outcomes = scheduler.run_cycles(2)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert outcomes[0].value == 42

    def test_reboot_after_failure(self):
        crashes = {"left": 1}

        def flaky():
            if crashes["left"]:
                crashes["left"] -= 1
                raise RuntimeError("boom")
            return "recovered"

        scheduler = PeriodicScheduler(
            [JobSpec("flaky", flaky, max_restarts=2, backoff=0.0)]
        )
        (outcome,) = scheduler.run_cycles(1)
        assert outcome.status == "rebooted"
        assert outcome.value == "recovered"
        assert scheduler.stats.reboots == 1

    def test_permanent_failure_reported(self):
        from repro.obs import make_obs

        def dead():
            raise RuntimeError("always")

        obs = make_obs()
        scheduler = PeriodicScheduler(
            [JobSpec("dead", dead, max_restarts=1, backoff=0.0)], obs=obs
        )
        (outcome,) = scheduler.run_cycles(1)
        assert outcome.status == "failed"
        assert "always" in outcome.error
        assert scheduler.stats.failures == 1
        # exhausting the reboot budget counts a failure metric too
        assert obs.metrics.counter("scheduler.failures", job="dead") == 1
        assert obs.metrics.counter("scheduler.reboots", job="dead") == 1

    def test_job_seconds_histogram_recorded(self):
        from repro.obs import make_obs

        obs = make_obs()
        scheduler = PeriodicScheduler(
            [JobSpec("quick", lambda: 1), JobSpec("other", lambda: 2)],
            obs=obs,
        )
        scheduler.run_cycles(3)
        histograms = obs.metrics.snapshot()["histograms"]
        series = histograms["scheduler.job_seconds"]
        assert series["job=quick"]["count"] == 3
        assert series["job=other"]["count"] == 3

    def test_threaded_mode_runs_jobs(self):
        counter = {"n": 0}
        lock = threading.Lock()

        def tick():
            with lock:
                counter["n"] += 1

        scheduler = PeriodicScheduler([JobSpec("tick", tick)], interval=0.01)
        outcomes = scheduler.run_in_threads(duration=0.15)
        assert counter["n"] >= 2
        assert all(o.status == "ok" for o in outcomes)


class TestTransportErrorsPropagate:
    def test_transport_error_is_retriable(self, small_web):
        class FlakyOnce:
            def __init__(self, inner):
                self.inner = inner
                self.first = True

            def fetch(self, url):
                if self.first:
                    self.first = False
                    raise TransportError("reset")
                return self.inner.fetch(url)

        fetcher = Fetcher(
            FlakyOnce(SimulatedTransport(small_web, time_scale=0.0)),
            max_retries=2,
            backoff=0.0,
            respect_robots=False,
        )
        assert fetcher.fetch(small_web.sites[0].index_url).ok
