"""Tests for STIX export/import."""

import json

import pytest

from repro import SecurityKG, SystemConfig
from repro.graphdb import PropertyGraph
from repro.ontology.stix import (
    StixBundle,
    export_graph,
    import_bundle,
    stix_id,
)


@pytest.fixture
def small_graph():
    graph = PropertyGraph()
    malware = graph.create_node(
        "Malware",
        {"name": "emotet", "merge_key": "emotet", "aliases": ["Emotet-A"]},
    )
    actor = graph.create_node(
        "ThreatActor", {"name": "mummy spider", "merge_key": "mummy spider"}
    )
    ip = graph.create_node("IP", {"name": "10.0.0.1", "merge_key": "10.0.0.1"})
    vendor = graph.create_node("Vendor", {"name": "Arcane Labs"})
    report = graph.create_node(
        "MalwareReport",
        {
            "name": "Emotet returns",
            "report_id": "r1",
            "source": "ThreatPedia",
            "url": "https://x/r1",
            "published": "2021-01-01",
        },
    )
    graph.create_edge(malware.node_id, "ATTRIBUTED_TO", actor.node_id)
    graph.create_edge(malware.node_id, "CONNECTS_TO", ip.node_id, {"weight": 3})
    graph.create_edge(report.node_id, "MENTIONS", malware.node_id)
    graph.create_edge(report.node_id, "MENTIONS", ip.node_id)
    graph.create_edge(report.node_id, "CREATED_BY", vendor.node_id)
    return graph


class TestExport:
    def test_object_types(self, small_graph):
        bundle = export_graph(small_graph)
        types = {o["type"] for o in bundle.objects}
        assert {"malware", "intrusion-set", "indicator", "identity",
                "report", "relationship"} <= types

    def test_indicator_pattern(self, small_graph):
        bundle = export_graph(small_graph)
        (indicator,) = bundle.by_type("indicator")
        assert indicator["pattern"] == "[ipv4-addr:value = '10.0.0.1']"

    def test_report_refs_and_creator(self, small_graph):
        bundle = export_graph(small_graph)
        (report,) = bundle.by_type("report")
        assert len(report["object_refs"]) == 2
        (identity,) = bundle.by_type("identity")
        assert report["created_by_ref"] == identity["id"]

    def test_relationship_objects(self, small_graph):
        bundle = export_graph(small_graph)
        relationships = bundle.by_type("relationship")
        rel_types = {r["relationship_type"] for r in relationships}
        assert rel_types == {"attributed-to", "communicates-with"}
        weights = {r["x_weight"] for r in relationships}
        assert 3 in weights

    def test_aliases_exported(self, small_graph):
        bundle = export_graph(small_graph)
        (malware,) = bundle.by_type("malware")
        assert malware["aliases"] == ["Emotet-A"]

    def test_deterministic_ids(self, small_graph):
        first = export_graph(small_graph).to_json()
        second = export_graph(small_graph).to_json()
        assert first == second

    def test_stix_id_shape(self):
        value = stix_id("malware", "emotet")
        prefix, _, suffix = value.partition("--")
        assert prefix == "malware"
        assert len(suffix) == 36

    def test_json_serialisable(self, small_graph):
        payload = export_graph(small_graph).to_json(indent=2)
        assert json.loads(payload)["type"] == "bundle"


class TestImport:
    def test_round_trip_counts(self, small_graph):
        bundle = export_graph(small_graph)
        rebuilt = import_bundle(bundle)
        assert rebuilt.node_count == small_graph.node_count
        assert rebuilt.edge_count == small_graph.edge_count

    def test_round_trip_edge_types(self, small_graph):
        rebuilt = import_bundle(export_graph(small_graph))
        assert rebuilt.edge_type_counts() == small_graph.edge_type_counts()

    def test_round_trip_labels(self, small_graph):
        rebuilt = import_bundle(export_graph(small_graph))
        assert rebuilt.label_counts() == small_graph.label_counts()

    def test_accepts_plain_dict(self, small_graph):
        payload = json.loads(export_graph(small_graph).to_json())
        rebuilt = import_bundle(payload)
        assert rebuilt.node_count == small_graph.node_count

    def test_bundle_of_empty_graph(self):
        bundle = export_graph(PropertyGraph())
        assert import_bundle(bundle).node_count == 0


class TestEndToEndExport:
    def test_full_system_graph_exports(self):
        kg = SecurityKG(
            SystemConfig(
                scenario_count=5,
                reports_per_site=2,
                sources=["ThreatPedia", "NVD Shadow"],
                connectors=["graph"],
            )
        )
        kg.run_once()
        bundle = export_graph(kg.graph)
        assert len(bundle.objects) > kg.graph.node_count  # + relationships
        rebuilt = import_bundle(bundle)
        assert rebuilt.label_counts() == kg.graph.label_counts()
        assert rebuilt.edge_type_counts() == kg.graph.edge_type_counts()
        # and the bundle is consumable as JSON
        assert isinstance(StixBundle(bundle.objects).to_json(), str)
