"""Tests for STIX export/import."""

import json

import pytest

from repro import SecurityKG, SystemConfig
from repro.graphdb import PropertyGraph
from repro.ontology.stix import (
    TLP_LEVELS,
    TLP_MARKING_IDS,
    StixBundle,
    canonical_bundle,
    export_graph,
    filter_bundle,
    import_bundle,
    max_tlp,
    stix_id,
    tlp_of_object,
    tlp_order,
)


@pytest.fixture
def small_graph():
    graph = PropertyGraph()
    malware = graph.create_node(
        "Malware",
        {"name": "emotet", "merge_key": "emotet", "aliases": ["Emotet-A"]},
    )
    actor = graph.create_node(
        "ThreatActor", {"name": "mummy spider", "merge_key": "mummy spider"}
    )
    ip = graph.create_node("IP", {"name": "10.0.0.1", "merge_key": "10.0.0.1"})
    vendor = graph.create_node("Vendor", {"name": "Arcane Labs"})
    report = graph.create_node(
        "MalwareReport",
        {
            "name": "Emotet returns",
            "report_id": "r1",
            "source": "ThreatPedia",
            "url": "https://x/r1",
            "published": "2021-01-01",
        },
    )
    graph.create_edge(malware.node_id, "ATTRIBUTED_TO", actor.node_id)
    graph.create_edge(malware.node_id, "CONNECTS_TO", ip.node_id, {"weight": 3})
    graph.create_edge(report.node_id, "MENTIONS", malware.node_id)
    graph.create_edge(report.node_id, "MENTIONS", ip.node_id)
    graph.create_edge(report.node_id, "CREATED_BY", vendor.node_id)
    return graph


class TestExport:
    def test_object_types(self, small_graph):
        bundle = export_graph(small_graph)
        types = {o["type"] for o in bundle.objects}
        assert {"malware", "intrusion-set", "indicator", "identity",
                "report", "relationship"} <= types

    def test_indicator_pattern(self, small_graph):
        bundle = export_graph(small_graph)
        (indicator,) = bundle.by_type("indicator")
        assert indicator["pattern"] == "[ipv4-addr:value = '10.0.0.1']"

    def test_report_refs_and_creator(self, small_graph):
        bundle = export_graph(small_graph)
        (report,) = bundle.by_type("report")
        assert len(report["object_refs"]) == 2
        (identity,) = bundle.by_type("identity")
        assert report["created_by_ref"] == identity["id"]

    def test_relationship_objects(self, small_graph):
        bundle = export_graph(small_graph)
        relationships = bundle.by_type("relationship")
        rel_types = {r["relationship_type"] for r in relationships}
        assert rel_types == {"attributed-to", "communicates-with"}
        weights = {r["x_weight"] for r in relationships}
        assert 3 in weights

    def test_aliases_exported(self, small_graph):
        bundle = export_graph(small_graph)
        (malware,) = bundle.by_type("malware")
        assert malware["aliases"] == ["Emotet-A"]

    def test_deterministic_ids(self, small_graph):
        first = export_graph(small_graph).to_json()
        second = export_graph(small_graph).to_json()
        assert first == second

    def test_stix_id_shape(self):
        value = stix_id("malware", "emotet")
        prefix, _, suffix = value.partition("--")
        assert prefix == "malware"
        assert len(suffix) == 36

    def test_json_serialisable(self, small_graph):
        payload = export_graph(small_graph).to_json(indent=2)
        assert json.loads(payload)["type"] == "bundle"


class TestImport:
    def test_round_trip_counts(self, small_graph):
        bundle = export_graph(small_graph)
        rebuilt = import_bundle(bundle)
        assert rebuilt.node_count == small_graph.node_count
        assert rebuilt.edge_count == small_graph.edge_count

    def test_round_trip_edge_types(self, small_graph):
        rebuilt = import_bundle(export_graph(small_graph))
        assert rebuilt.edge_type_counts() == small_graph.edge_type_counts()

    def test_round_trip_labels(self, small_graph):
        rebuilt = import_bundle(export_graph(small_graph))
        assert rebuilt.label_counts() == small_graph.label_counts()

    def test_accepts_plain_dict(self, small_graph):
        payload = json.loads(export_graph(small_graph).to_json())
        rebuilt = import_bundle(payload)
        assert rebuilt.node_count == small_graph.node_count

    def test_bundle_of_empty_graph(self):
        bundle = export_graph(PropertyGraph())
        assert import_bundle(bundle).node_count == 0


class TestTlpVocabulary:
    def test_order_is_total(self):
        assert [tlp_order(level) for level in TLP_LEVELS] == [0, 1, 2, 3]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            tlp_order("chartreuse")

    def test_max_tlp(self):
        assert max_tlp(["white", "red", "green"]) == "red"
        assert max_tlp([]) == "white"

    def test_canonical_marking_ids(self):
        # the spec-defined TLP marking-definition UUIDs, not ours
        assert TLP_MARKING_IDS["white"].endswith(
            "613f2e26-407d-48c7-9eca-b8e91df99dc9"
        )
        assert set(TLP_MARKING_IDS) == set(TLP_LEVELS)

    def test_type_defaults(self):
        assert tlp_of_object({"type": "report", "id": "report--x"}) == "amber"
        assert tlp_of_object({"type": "indicator", "id": "indicator--x"}) == "green"
        assert tlp_of_object({"type": "malware", "id": "malware--x"}) == "white"


class TestMarkings:
    def test_markings_attached(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        for stix_object in bundle.objects:
            if stix_object["type"] == "marking-definition":
                continue
            refs = stix_object["object_marking_refs"]
            assert len(refs) == 1 and refs[0] in TLP_MARKING_IDS.values()

    def test_marking_definitions_present(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        definitions = bundle.by_type("marking-definition")
        levels = {d["definition"]["tlp"] for d in definitions}
        # reports default amber, indicators green, the rest white
        assert {"white", "green", "amber"} <= levels

    def test_explicit_tlp_property_wins(self):
        graph = PropertyGraph()
        graph.create_node("Malware", {"name": "x", "tlp": "red"})
        bundle = export_graph(graph, markings=True)
        (malware,) = bundle.by_type("malware")
        assert malware["object_marking_refs"] == [TLP_MARKING_IDS["red"]]

    def test_relationship_inherits_max_of_endpoints(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        by_id = {o["id"]: o for o in bundle.objects}
        for relationship in bundle.by_type("relationship"):
            src = tlp_of_object(by_id[relationship["source_ref"]])
            dst = tlp_of_object(by_id[relationship["target_ref"]])
            assert tlp_of_object(relationship) == max_tlp([src, dst])

    def test_marked_round_trip(self, small_graph):
        rebuilt = import_bundle(export_graph(small_graph, markings=True))
        assert rebuilt.label_counts() == small_graph.label_counts()
        assert rebuilt.edge_type_counts() == small_graph.edge_type_counts()


class TestFilterBundle:
    @pytest.fixture
    def red_graph(self):
        graph = PropertyGraph()
        graph.create_node("Malware", {"name": "emotet", "merge_key": "emotet"})
        secret = graph.create_node(
            "ThreatActor", {"name": "covert", "merge_key": "covert", "tlp": "red"}
        )
        public = graph.create_node(
            "ThreatActor", {"name": "overt", "merge_key": "overt"}
        )
        malware = next(n for n in graph.nodes() if n.label == "Malware")
        graph.create_edge(malware.node_id, "ATTRIBUTED_TO", secret.node_id)
        graph.create_edge(malware.node_id, "ATTRIBUTED_TO", public.node_id)
        return graph

    def test_red_dropped_from_green(self, red_graph):
        bundle = export_graph(red_graph, markings=True)
        green = filter_bundle(bundle, "green")
        names = {o.get("name") for o in green.objects}
        assert "covert" not in names and "overt" in names

    def test_dangling_relationships_dropped(self, red_graph):
        bundle = export_graph(red_graph, markings=True)
        green = filter_bundle(bundle, "green")
        by_id = {o["id"] for o in green.objects}
        for relationship in green.by_type("relationship"):
            assert relationship["source_ref"] in by_id
            assert relationship["target_ref"] in by_id
        assert len(green.by_type("relationship")) == 1

    def test_red_ceiling_keeps_everything(self, red_graph):
        bundle = export_graph(red_graph, markings=True)
        assert len(filter_bundle(bundle, "red").objects) == len(bundle.objects)

    def test_white_ceiling_drops_reports(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        white = filter_bundle(bundle, "white")
        assert white.by_type("report") == []
        assert white.by_type("malware")  # plain entities survive

    def test_report_refs_pruned_to_survivors(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        amber = filter_bundle(bundle, "amber")
        by_id = {o["id"] for o in amber.objects}
        (report,) = amber.by_type("report")
        assert report["object_refs"] == sorted(report["object_refs"])
        assert all(ref in by_id for ref in report["object_refs"])

    def test_sanitize_strips_sourcing(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        sanitized = filter_bundle(bundle, "amber", sanitize=True)
        (report,) = sanitized.by_type("report")
        assert "x_source" not in report and "x_url" not in report
        raw = filter_bundle(bundle, "amber")
        (report,) = raw.by_type("report")
        assert "x_source" in report

    def test_filter_does_not_mutate_input(self, small_graph):
        bundle = export_graph(small_graph, markings=True)
        before = bundle.to_json()
        filter_bundle(bundle, "white", sanitize=True)
        assert bundle.to_json() == before

    def test_marking_definitions_respect_ceiling(self, red_graph):
        bundle = export_graph(red_graph, markings=True)
        green = filter_bundle(bundle, "green")
        levels = {
            d["definition"]["tlp"] for d in green.by_type("marking-definition")
        }
        assert "red" not in levels and "amber" not in levels


class TestEndToEndExport:
    def test_full_system_graph_exports(self):
        kg = SecurityKG(
            SystemConfig(
                scenario_count=5,
                reports_per_site=2,
                sources=["ThreatPedia", "NVD Shadow"],
                connectors=["graph"],
            )
        )
        kg.run_once()
        bundle = export_graph(kg.graph)
        assert len(bundle.objects) > kg.graph.node_count  # + relationships
        rebuilt = import_bundle(bundle)
        assert rebuilt.label_counts() == kg.graph.label_counts()
        assert rebuilt.edge_type_counts() == kg.graph.edge_type_counts()
        # and the bundle is consumable as JSON
        assert isinstance(StixBundle(bundle.objects).to_json(), str)

    def test_fused_multi_report_round_trip(self):
        """The ISSUE 9 satellite: export a *fused* multi-report graph
        with markings, re-import it, and get the same shape back --
        with byte-identical bundles across repeated exports."""
        kg = SecurityKG(
            SystemConfig(
                scenario_count=6,
                reports_per_site=2,
                sources=["ThreatPedia", "NVD Shadow", "MalwareVault"],
                connectors=["graph"],
            )
        )
        kg.run_once()
        kg.run_fusion()
        first = export_graph(kg.graph, markings=True)
        second = export_graph(kg.graph, markings=True)
        assert first.to_json() == second.to_json()  # deterministic ids
        rebuilt = import_bundle(first)
        assert rebuilt.label_counts() == kg.graph.label_counts()
        assert rebuilt.edge_type_counts() == kg.graph.edge_type_counts()
        # and re-exporting the rebuilt graph converges (canonically:
        # edge insertion order differs, so report object_refs may be
        # permuted until canonicalisation sorts them)
        assert (
            canonical_bundle(export_graph(rebuilt, markings=True)).to_json()
            == canonical_bundle(first).to_json()
        )
