"""Unit tests for similarity metrics and knowledge fusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion import (
    KnowledgeFusion,
    jaro_winkler,
    name_similarity,
    squash,
    token_set_overlap,
)
from repro.graphdb import PropertyGraph


class TestSimilarity:
    def test_squash_removes_conventions(self):
        assert squash("Agent Tesla") == squash("agent_tesla") == squash("agent-tesla")
        assert squash("AgentTesla") == "agenttesla"

    def test_jaro_winkler_bounds_and_identity(self):
        assert jaro_winkler("emotet", "emotet") == 1.0
        assert jaro_winkler("abc", "xyz") == 0.0
        assert 0 < jaro_winkler("emotet", "emotett") < 1

    def test_prefix_bonus(self):
        assert jaro_winkler("trickbot", "trickbo") > jaro_winkler(
            "trickbot", "rickbott"
        )

    def test_token_overlap(self):
        assert token_set_overlap("cozy bear", "bear cozy") == 1.0
        assert token_set_overlap("cozy bear", "fancy bear") == pytest.approx(1 / 3)

    def test_name_similarity_convention_equals_one(self):
        assert name_similarity("Agent Tesla", "agent_tesla") == 1.0
        assert name_similarity("WannaCry", "wannacry") == 1.0

    def test_name_similarity_unrelated_low(self):
        assert name_similarity("emotet", "stuxnet") < 0.8

    @given(st.text(alphabet="abc XYZ_-", max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity(self, name):
        if squash(name):
            assert name_similarity(name, name) == 1.0


def seeded_graph():
    """Three naming variants of one malware + an unrelated one, with edges."""
    graph = PropertyGraph()
    a = graph.create_node("Malware", {"name": "agent tesla", "merge_key": "agent tesla"})
    b = graph.create_node("Malware", {"name": "AgentTesla", "merge_key": "agenttesla"})
    c = graph.create_node("Malware", {"name": "agent_tesla", "merge_key": "agent_tesla"})
    other = graph.create_node("Malware", {"name": "stuxnet", "merge_key": "stuxnet"})
    ip = graph.create_node("IP", {"name": "10.0.0.1"})
    actor = graph.create_node("ThreatActor", {"name": "mummy spider"})
    graph.create_edge(a.node_id, "CONNECTS_TO", ip.node_id, {"weight": 2})
    graph.create_edge(b.node_id, "CONNECTS_TO", ip.node_id, {"weight": 1})
    graph.create_edge(c.node_id, "ATTRIBUTED_TO", actor.node_id)
    graph.create_edge(other.node_id, "CONNECTS_TO", ip.node_id)
    return graph, (a, b, c, other, ip, actor)


class TestKnowledgeFusion:
    def test_alias_groups_found(self):
        graph, (a, b, c, other, *_rest) = seeded_graph()
        groups = KnowledgeFusion().find_alias_groups(graph)
        assert len(groups) == 1
        assert set(groups[0]) == {a.node_id, b.node_id, c.node_id}

    def test_merge_migrates_edges(self):
        graph, (_a, _b, _c, _other, ip, actor) = seeded_graph()
        report = KnowledgeFusion().run(graph)
        assert report.groups_merged == 1
        assert report.aliases_resolved == 2
        assert graph.node_count == 4  # 1 fused malware + stuxnet + ip + actor
        (fused,) = [
            n
            for n in graph.nodes("Malware")
            if squash(str(n.properties["name"])) == "agenttesla"
        ]
        # edge weights combined, both relation types preserved
        connects = [
            e for e in graph.out_edges(fused.node_id, "CONNECTS_TO")
            if e.dst == ip.node_id
        ]
        assert len(connects) == 1
        assert connects[0].properties["weight"] == 3
        assert graph.out_edges(fused.node_id, "ATTRIBUTED_TO")[0].dst == actor.node_id

    def test_aliases_recorded(self):
        graph, _nodes = seeded_graph()
        KnowledgeFusion().run(graph)
        (fused,) = [
            n
            for n in graph.nodes("Malware")
            if squash(str(n.properties["name"])) == "agenttesla"
        ]
        assert len(fused.properties["aliases"]) == 2

    def test_unrelated_node_untouched(self):
        graph, (_a, _b, _c, other, *_rest) = seeded_graph()
        KnowledgeFusion().run(graph)
        assert graph.has_node(other.node_id)

    def test_ioc_labels_never_fused(self):
        graph = PropertyGraph()
        graph.create_node("Hash", {"name": "a" * 64})
        graph.create_node("Hash", {"name": "a" * 63 + "b"})
        report = KnowledgeFusion().run(graph)
        assert report.groups_merged == 0

    def test_idempotent(self):
        graph, _nodes = seeded_graph()
        fusion = KnowledgeFusion()
        first = fusion.run(graph)
        second = fusion.run(graph)
        assert first.groups_merged == 1
        assert second.groups_merged == 0
        assert second.nodes_removed == 0

    def test_canonical_is_highest_degree(self):
        graph, (a, _b, _c, _other, _ip, _actor) = seeded_graph()
        # 'a' (agent tesla) has 1 edge; add one more to make it clearly richest
        extra = graph.create_node("FileName", {"name": "x.exe"})
        graph.create_edge(a.node_id, "DROPS", extra.node_id)
        fusion = KnowledgeFusion()
        (group,) = fusion.find_alias_groups(graph)
        canonical = fusion.merge_group(graph, group)
        assert canonical == a.node_id
