"""Unit tests for dependency parsing and relation extraction."""

from repro.nlp.depparse import parse
from repro.nlp.ner import EntitySpan
from repro.nlp.relation import RelationExtractor, ioc_spans
from repro.nlp.tokenize import tokenize_words
from repro.ontology import EntityType


def spans_for(tokens, *specs):
    """specs: (phrase, type) -> EntitySpan with token indices."""
    words = [t.text for t in tokens]
    result = []
    for phrase, entity_type in specs:
        parts = phrase.split(" ") if " " not in phrase or not any(
            t.text == phrase for t in tokens
        ) else [phrase]
        # exact single-token IOC strings appear as one token
        if any(t.text == phrase for t in tokens):
            i = words.index(phrase)
            result.append(EntitySpan(i, i + 1, entity_type, phrase))
            continue
        first = words.index(parts[0])
        result.append(
            EntitySpan(first, first + len(parts), entity_type, phrase)
        )
    return result


def triples(extractor, text, *specs):
    tokens = tokenize_words(text)
    spans = spans_for(tokens, *specs)
    return {
        (r.head_text, r.verb, r.tail_text)
        for r in extractor.extract(tokens, spans)
    }


class TestDepparse:
    def test_svo_arcs(self):
        tokens = tokenize_words("wannacry dropped tasksche.exe on hosts")
        parsed = parse(tokens)
        labels = {(a.label, parsed.tokens[a.dep].text) for a in parsed.arcs}
        assert ("nsubj", "wannacry") in labels
        assert ("dobj", "tasksche.exe") in labels

    def test_prep_arc(self):
        tokens = tokenize_words("The malware connects to 10.0.0.1 daily")
        parsed = parse(tokens)
        assert any(a.label == "prep:to" for a in parsed.arcs)

    def test_conjunction_arc(self):
        tokens = tokenize_words("it drops a.exe and b.exe today")
        parsed = parse(tokens)
        assert any(a.label == "conj" for a in parsed.arcs)

    def test_passive_detection(self):
        tokens = tokenize_words("emotet is attributed to mummy spider")
        parsed = parse(tokens)
        assert any(a.label == "nsubjpass" for a in parsed.arcs)


class TestRelationExtractor:
    RX = RelationExtractor()

    def test_simple_svo(self):
        found = triples(
            self.RX,
            "The wannacry ransomware dropped tasksche.exe on infected hosts.",
            ("wannacry", EntityType.MALWARE),
            ("tasksche.exe", EntityType.FILE_NAME),
        )
        assert ("wannacry", "drop", "tasksche.exe") in found

    def test_prepositional_object(self):
        found = triples(
            self.RX,
            "Researchers observed that emotet connects to 10.9.8.7 over port 443.",
            ("emotet", EntityType.MALWARE),
            ("10.9.8.7", EntityType.IP),
        )
        assert ("emotet", "connect", "10.9.8.7") in found

    def test_conjunction_distributes(self):
        found = triples(
            self.RX,
            "The group known as night owl employs credential dumping and process injection in attacks.",
            ("night owl", EntityType.THREAT_ACTOR),
            ("credential dumping", EntityType.TECHNIQUE),
            ("process injection", EntityType.TECHNIQUE),
        )
        assert ("night owl", "employ", "credential dumping") in found
        assert ("night owl", "employ", "process injection") in found

    def test_coordinated_verbs_share_subject(self):
        found = triples(
            self.RX,
            "emotet drops a copy as x.exe and encrypts y.doc across drives.",
            ("emotet", EntityType.MALWARE),
            ("x.exe", EntityType.FILE_NAME),
            ("y.doc", EntityType.FILE_NAME),
        )
        assert ("emotet", "encrypt", "y.doc") in found

    def test_passive_with_prep(self):
        found = triples(
            self.RX,
            "emotet is attributed to mummy spider based on infrastructure.",
            ("emotet", EntityType.MALWARE),
            ("mummy spider", EntityType.THREAT_ACTOR),
        )
        assert ("emotet", "attribute", "mummy spider") in found

    def test_carrier_verb(self):
        found = triples(
            self.RX,
            "Telemetry links emotet to mummy spider with high confidence.",
            ("emotet", EntityType.MALWARE),
            ("mummy spider", EntityType.THREAT_ACTOR),
        )
        assert ("emotet", "link", "mummy spider") in found

    def test_np_overlap_resolution(self):
        # syntactic head 'ransomware' differs from the entity 'wannacry'
        found = triples(
            self.RX,
            "The wannacry ransomware encrypts backup.dat silently.",
            ("wannacry", EntityType.MALWARE),
            ("backup.dat", EntityType.FILE_NAME),
        )
        assert ("wannacry", "encrypt", "backup.dat") in found

    def test_schema_filter_blocks_illegal(self):
        # a file cannot DROP a malware; schema filtering must reject it
        found = triples(
            self.RX,
            "x.exe dropped emotet on the host.",
            ("x.exe", EntityType.FILE_NAME),
            ("emotet", EntityType.MALWARE),
        )
        assert ("x.exe", "drop", "emotet") not in found

    def test_unknown_verb_dropped_by_default(self):
        found = triples(
            self.RX,
            "emotet frobnicates x.exe entirely.",
            ("emotet", EntityType.MALWARE),
            ("x.exe", EntityType.FILE_NAME),
        )
        assert found == set()

    def test_unknown_verb_kept_when_configured(self):
        # 'monitor' is a known verb form but not in the relation
        # vocabulary: dropped by default, kept when configured.
        rx = RelationExtractor(drop_unknown_verbs=False, schema_filter=False)
        found = triples(
            rx,
            "emotet monitors x.exe continuously.",
            ("emotet", EntityType.MALWARE),
            ("x.exe", EntityType.FILE_NAME),
        )
        assert ("emotet", "monitor", "x.exe") in found
        strict = triples(
            self.RX,
            "emotet monitors x.exe continuously.",
            ("emotet", EntityType.MALWARE),
            ("x.exe", EntityType.FILE_NAME),
        )
        assert strict == set()

    def test_fewer_than_two_spans(self):
        tokens = tokenize_words("emotet spreads quickly.")
        spans = [EntitySpan(0, 1, EntityType.MALWARE, "emotet")]
        assert self.RX.extract(tokens, spans) == []

    def test_ioc_spans_helper(self):
        tokens = tokenize_words("beacons to 10.0.0.1 and evil.com now")
        spans = ioc_spans(tokens)
        assert {s.text for s in spans} == {"10.0.0.1", "evil.com"}

    def test_extract_with_mentions_maps_offsets(self):
        from repro.ontology import Mention

        text = "emotet connects to 10.0.0.1 daily."
        tokens = tokenize_words(text)
        mentions = [
            Mention("emotet", EntityType.MALWARE, 0, text.index("emotet"), text.index("emotet") + 6),
            Mention("10.0.0.1", EntityType.IP, 0, text.index("10."), text.index("10.") + 8),
        ]
        rels = self.RX.extract_with_mentions(tokens, mentions, 0)
        assert [(r.head_text, r.tail_text) for r in rels] == [("emotet", "10.0.0.1")]
