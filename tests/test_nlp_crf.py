"""Unit tests for the linear-chain CRF."""

import random

import numpy as np
import pytest

from repro.nlp.crf import LinearChainCRF


def make_toy_data(n, seed=0):
    """Words starting with 'a' are labelled A; after 'a'-words, 'b'-words
    are B (tests transitions); everything else O."""
    rng = random.Random(seed)
    vocab = ["ant", "apple", "bog", "bat", "cat", "dog"]
    X, Y = [], []
    for _ in range(n):
        words = [rng.choice(vocab) for _ in range(rng.randint(3, 9))]
        labels = []
        for i, w in enumerate(words):
            if w.startswith("a"):
                labels.append("A")
            elif w.startswith("b") and i > 0 and words[i - 1].startswith("a"):
                labels.append("B")
            else:
                labels.append("O")
        X.append([[f"w={w}", f"p1={w[0]}"] for w in words])
        Y.append(labels)
    return X, Y


@pytest.fixture(scope="module")
def toy_crf():
    X, Y = make_toy_data(120)
    return LinearChainCRF(l2=0.01, max_iterations=80).fit(X, Y)


class TestTraining:
    def test_learns_emissions_and_transitions(self, toy_crf):
        X, Y = make_toy_data(40, seed=1)
        correct = total = 0
        for feats, labels in zip(X, Y):
            pred = toy_crf.predict(feats)
            correct += sum(p == g for p, g in zip(pred, labels))
            total += len(labels)
        assert correct / total > 0.97

    def test_transition_signal_used(self, toy_crf):
        # 'bat' after an 'a'-word must be B, standalone must be O --
        # emission features alone cannot distinguish these.
        pred = toy_crf.predict([["w=ant", "p1=a"], ["w=bat", "p1=b"]])
        assert pred == ["A", "B"]
        pred2 = toy_crf.predict([["w=cat", "p1=c"], ["w=bat", "p1=b"]])
        assert pred2 == ["O", "O"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LinearChainCRF().fit([[["f"]]], [])

    def test_unknown_features_ignored_at_predict(self, toy_crf):
        pred = toy_crf.predict([["w=zebra", "never-seen"]])
        assert len(pred) == 1


class TestInference:
    def test_marginals_sum_to_one(self, toy_crf):
        marginals = toy_crf.predict_marginals([["w=ant"], ["w=bog"], ["w=cat"]])
        for dist in marginals:
            assert abs(sum(dist.values()) - 1.0) < 1e-6

    def test_marginals_agree_with_viterbi_when_confident(self, toy_crf):
        feats = [["w=ant", "p1=a"], ["w=cat", "p1=c"]]
        viterbi = toy_crf.predict(feats)
        marginals = toy_crf.predict_marginals(feats)
        argmax = [max(d, key=d.get) for d in marginals]
        assert viterbi == argmax

    def test_empty_sentence(self, toy_crf):
        assert toy_crf.predict([]) == []
        assert toy_crf.predict_marginals([]) == []

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            LinearChainCRF().predict([["f"]])


class TestPersistence:
    def test_save_load_round_trip(self, toy_crf, tmp_path):
        path = tmp_path / "model"
        toy_crf.save(path)
        loaded = LinearChainCRF.load(path)
        feats = [["w=ant", "p1=a"], ["w=bat", "p1=b"], ["w=cat", "p1=c"]]
        assert loaded.predict(feats) == toy_crf.predict(feats)
        np.testing.assert_allclose(loaded.emission, toy_crf.emission)
        np.testing.assert_allclose(loaded.transition, toy_crf.transition)


class TestGradient:
    def test_gradient_matches_finite_differences(self):
        """The analytic gradient must match numeric differentiation."""
        X, Y = make_toy_data(4, seed=3)
        crf = LinearChainCRF(l2=0.1)
        crf._build_vocab(X, Y)
        encoded = [crf._encode(s, l) for s, l in zip(X, Y)]
        n_features = len(crf.feature_index)
        n_labels = len(crf.labels)
        size = n_features * n_labels + (n_labels + 1) * n_labels
        rng = np.random.default_rng(0)
        theta = rng.normal(scale=0.1, size=size)

        def objective(t):
            emission = t[: n_features * n_labels].reshape(n_features, n_labels)
            transition = t[n_features * n_labels :].reshape(n_labels + 1, n_labels)
            value = 0.0
            for sentence in encoded:
                scores = crf._scores(sentence, emission)
                _a, _b, log_z = crf._forward_backward(scores, transition)
                labels = sentence.labels
                path = transition[n_labels, labels[0]] + scores[0, labels[0]]
                for i in range(1, len(labels)):
                    path += transition[labels[i - 1], labels[i]] + scores[i, labels[i]]
                value -= path - log_z
            return value + 0.5 * crf.l2 * float(t @ t)

        # analytic gradient via the internal objective
        emission_size = n_features * n_labels

        def full(t):
            emission = t[:emission_size].reshape(n_features, n_labels)
            transition = t[emission_size:].reshape(n_labels + 1, n_labels)
            grad_e = np.zeros_like(emission)
            grad_t = np.zeros_like(transition)
            value = 0.0
            trans = transition[:n_labels]
            for sentence in encoded:
                scores = crf._scores(sentence, emission)
                alpha, beta, log_z = crf._forward_backward(scores, transition)
                labels = sentence.labels
                path = transition[n_labels, labels[0]] + scores[0, labels[0]]
                for i in range(1, len(labels)):
                    path += trans[labels[i - 1], labels[i]] + scores[i, labels[i]]
                value -= path - log_z
                marg = np.exp(alpha + beta - log_z)
                for i, ids in enumerate(sentence.features):
                    if len(ids):
                        grad_e[ids] += marg[i]
                        grad_e[ids, labels[i]] -= 1.0
                grad_t[n_labels] += marg[0]
                grad_t[n_labels, labels[0]] -= 1.0
                for i in range(1, len(labels)):
                    pair = (
                        alpha[i - 1][:, None] + trans + (scores[i] + beta[i])[None, :] - log_z
                    )
                    grad_t[:n_labels] += np.exp(pair)
                    grad_t[labels[i - 1], labels[i]] -= 1.0
            value += 0.5 * crf.l2 * float(t @ t)
            grad = np.concatenate([grad_e.ravel(), grad_t.ravel()]) + crf.l2 * t
            return value, grad

        _value, grad = full(theta)
        eps = 1e-5
        indices = rng.choice(size, size=12, replace=False)
        for index in indices:
            bump = np.zeros(size)
            bump[index] = eps
            numeric = (objective(theta + bump) - objective(theta - bump)) / (2 * eps)
            assert abs(numeric - grad[index]) < 1e-4, index
