"""Tests for the Cypher semantic analyzer and strict query mode."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cypher_check import (
    BASE_PROPERTY_KEYS,
    CypherAnalyzer,
    QuerySchema,
    ontology_schema,
    schema_for,
)
from repro.analysis.diagnostics import Severity, errors
from repro.graphdb import (
    CypherAnalysisError,
    CypherEngine,
    CypherRuntimeError,
    PropertyGraph,
)
from repro.graphdb.cypher.parser import parse


def closed_schema() -> QuerySchema:
    return ontology_schema(closed=True)


def analyze(query: str, schema: QuerySchema | None = None):
    return CypherAnalyzer(schema or closed_schema()).analyze(query)


def rules(diagnostics) -> set[str]:
    return {d.rule for d in diagnostics}


class TestVocabularyRules:
    def test_unknown_label_is_error_with_suggestion(self):
        diags = analyze("MATCH (m:Malwear) RETURN m.name")
        (diag,) = [d for d in diags if d.rule == "cypher/unknown-label"]
        assert diag.severity is Severity.ERROR
        assert diag.suggestion == "Malware"
        assert diag.span is not None
        # span points at the label token itself
        assert "MATCH (m:Malwear) RETURN m.name"[diag.span.start :].startswith(
            "Malwear"
        )

    def test_unknown_rel_type_is_error(self):
        diags = analyze("MATCH (a)-[:USSES]->(b) RETURN a")
        (diag,) = [d for d in diags if d.rule == "cypher/unknown-rel-type"]
        assert diag.severity is Severity.ERROR
        assert diag.suggestion == "USES"

    def test_create_vocabulary_miss_is_warning(self):
        diags = analyze('CREATE (m:Malwear {name: "x"})')
        (diag,) = [d for d in diags if d.rule == "cypher/unknown-label"]
        assert diag.severity is Severity.WARNING

    def test_open_vocabulary_downgrades_to_warning(self):
        diags = analyze(
            "MATCH (m:Malwear) RETURN m.name", ontology_schema(closed=False)
        )
        (diag,) = [d for d in diags if d.rule == "cypher/unknown-label"]
        assert diag.severity is Severity.WARNING

    def test_known_vocabulary_is_clean(self):
        diags = analyze(
            "MATCH (a:ThreatActor)-[:USES]->(t:Technique) "
            "RETURN a.name, count(t) AS c ORDER BY c DESC LIMIT 5"
        )
        assert not errors(diags)


class TestBindingRules:
    def test_unbound_variable_in_return(self):
        diags = analyze("MATCH (n) RETURN x")
        (diag,) = [d for d in diags if d.rule == "cypher/unbound-variable"]
        assert diag.severity is Severity.ERROR
        assert "'x'" in diag.message and "RETURN" in diag.message

    def test_unbound_variable_in_where(self):
        diags = analyze('MATCH (n) WHERE m.name = "x" RETURN n')
        assert "cypher/unbound-variable" in rules(errors(diags))

    def test_order_by_sees_return_aliases(self):
        diags = analyze(
            "MATCH (a:ThreatActor) RETURN count(a) AS c ORDER BY c DESC"
        )
        assert "cypher/unbound-variable" not in rules(diags)

    def test_order_by_unknown_name_is_error(self):
        diags = analyze("MATCH (n) RETURN n ORDER BY zz")
        assert "cypher/unbound-variable" in rules(errors(diags))

    def test_close_variable_suggested(self):
        diags = analyze("MATCH (actor:ThreatActor) RETURN actr.name")
        (diag,) = [d for d in diags if d.rule == "cypher/unbound-variable"]
        assert diag.suggestion == "actor"


class TestExpressionRules:
    def test_aggregate_in_where(self):
        diags = analyze("MATCH (n) WHERE count(n) > 1 RETURN n")
        assert "cypher/aggregate-in-where" in rules(errors(diags))

    def test_literal_ordering_type_mismatch(self):
        diags = analyze('MATCH (n) WHERE 1 < "a" RETURN n')
        (diag,) = [d for d in diags if d.rule == "cypher/type-mismatch"]
        assert diag.severity is Severity.ERROR

    def test_property_literal_mismatch_uses_observed_types(self):
        schema = closed_schema().merged_with(
            QuerySchema(property_types={"name": frozenset({"str"})})
        )
        diags = analyze("MATCH (n) WHERE n.name > 5 RETURN n", schema)
        (diag,) = [d for d in diags if d.rule == "cypher/type-mismatch"]
        assert diag.severity is Severity.WARNING

    def test_unknown_property_key_warning(self):
        diags = analyze('MATCH (n) WHERE n.naem = "x" RETURN n')
        (diag,) = [d for d in diags if d.rule == "cypher/unknown-property"]
        assert diag.severity is Severity.WARNING
        assert diag.suggestion == "name"

    def test_duplicate_alias_warning(self):
        diags = analyze("MATCH (n) RETURN n.name, n.name")
        assert "cypher/duplicate-alias" in rules(diags)


class TestPatternRules:
    def test_unbounded_path_warning(self):
        diags = analyze("MATCH (a)-[:USES*]->(b) RETURN b")
        (diag,) = [d for d in diags if d.rule == "cypher/unbounded-path"]
        assert diag.severity is Severity.WARNING

    def test_explicit_bound_is_clean(self):
        diags = analyze("MATCH (a)-[:USES*1..3]->(b) RETURN b")
        assert "cypher/unbounded-path" not in rules(diags)

    def test_cartesian_product_warning(self):
        diags = analyze("MATCH (a:Malware), (b:Technique) RETURN a, b")
        assert "cypher/cartesian-product" in rules(diags)

    def test_connected_paths_are_clean(self):
        diags = analyze(
            "MATCH (a:Malware)-[:USES]->(t), (a)-[:TARGETS]->(o) RETURN a, t, o"
        )
        assert "cypher/cartesian-product" not in rules(diags)


@pytest.fixture()
def populated_engine():
    graph = PropertyGraph()
    malware = graph.create_node("Malware", {"name": "wannacry"})
    actor = graph.create_node("ThreatActor", {"name": "lazarus"})
    graph.create_edge(actor.node_id, "USES", malware.node_id, {"weight": 1.0})
    return CypherEngine(graph)


class TestEngineStrictMode:
    def test_unknown_label_rejected_before_execution(self, populated_engine):
        with pytest.raises(CypherAnalysisError) as exc:
            populated_engine.run("MATCH (m:Malwear) RETURN m.name")
        assert "cypher/unknown-label" in str(exc.value)
        assert "^" in str(exc.value)  # caret block present
        assert exc.value.diagnostics[0].span is not None

    def test_unbound_variable_rejected(self, populated_engine):
        with pytest.raises(CypherAnalysisError) as exc:
            populated_engine.run("MATCH (n) RETURN x")
        assert "cypher/unbound-variable" in str(exc.value)

    def test_analysis_error_is_a_runtime_error(self, populated_engine):
        # existing callers catching CypherRuntimeError keep working
        with pytest.raises(CypherRuntimeError):
            populated_engine.run("MATCH (n) RETURN x")

    def test_no_strict_bypasses_analysis(self, populated_engine):
        rows = populated_engine.run(
            "MATCH (m:Malwear) RETURN m.name", strict=False
        )
        assert rows == []

    def test_engine_level_default_off(self):
        engine = CypherEngine(PropertyGraph(), strict=False)
        assert engine.run("MATCH (m:Malwear) RETURN m") == []

    def test_warnings_do_not_block(self, populated_engine):
        rows = populated_engine.run("MATCH (a)-[:USES*]->(b) RETURN b.name")
        assert [r["b.name"] for r in rows] == ["wannacry"]

    def test_graph_labels_extend_schema(self, populated_engine):
        graph = populated_engine.graph
        graph.create_node("CustomThing", {"name": "x"})
        rows = populated_engine.run("MATCH (c:CustomThing) RETURN c.name")
        assert [r["c.name"] for r in rows] == ["x"]

    def test_schema_cache_invalidated_by_create(self, populated_engine):
        populated_engine.run("MATCH (n) RETURN n")  # warm the cache
        populated_engine.run('CREATE (z:Zebra {name: "z"})')
        rows = populated_engine.run("MATCH (z:Zebra) RETURN z.name")
        assert [r["z.name"] for r in rows] == ["z"]

    def test_schema_for_merges_graph_and_ontology(self, populated_engine):
        schema = schema_for(populated_engine.graph)
        assert "Malware" in schema.labels and "USES" in schema.rel_types
        assert "weight" in schema.property_keys
        assert schema.closed_labels and schema.closed_rel_types


class TestUIServerEndpoint:
    @pytest.fixture()
    def api(self):
        from repro import SecurityKG, SystemConfig
        from repro.ui.server import ExplorerAPI

        system = SecurityKG(SystemConfig(connectors=["graph"]))
        system.graph.create_node("Malware", {"name": "wannacry"})
        return ExplorerAPI(system)

    def test_bad_query_returns_structured_diagnostics(self, api):
        status, payload = api.handle(
            "POST", "/api/cypher", {"query": "MATCH (m:Malwear) RETURN m.name"}
        )
        assert status == 400
        assert payload["diagnostics"]
        diag = payload["diagnostics"][0]
        assert diag["rule"] == "cypher/unknown-label"
        assert diag["severity"] == "error"
        assert isinstance(diag["start"], int)
        assert "cypher/unknown-label" in payload["error"]

    def test_unbound_variable_rejected(self, api):
        status, payload = api.handle(
            "POST", "/api/cypher", {"query": "MATCH (n) RETURN x"}
        )
        assert status == 400
        assert payload["diagnostics"][0]["rule"] == "cypher/unbound-variable"

    def test_strict_false_passes_through(self, api):
        status, payload = api.handle(
            "POST",
            "/api/cypher",
            {"query": "MATCH (m:Malwear) RETURN m.name", "strict": False},
        )
        assert status == 200
        assert payload["rows"] == []

    def test_good_query_still_works(self, api):
        status, payload = api.handle(
            "POST", "/api/cypher", {"query": "MATCH (m:Malware) RETURN m.name"}
        )
        assert status == 200
        assert payload["rows"] == [{"m.name": "wannacry"}]


class TestCLI:
    def run_cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_unbound_variable_rejected_with_caret(self):
        code, output = self.run_cli(
            "cypher", "--scenarios", "2", "--reports-per-site", "1",
            "MATCH (n) RETURN x",
        )
        assert code == 2
        assert "cypher/unbound-variable" in output
        assert "^" in output

    def test_no_strict_flag_bypasses(self):
        code, output = self.run_cli(
            "cypher", "--scenarios", "2", "--reports-per-site", "1",
            "--no-strict", "MATCH (n) RETURN x",
        )
        # analysis skipped: the empty match produces no rows, so the
        # unbound variable is never evaluated and the query "succeeds"
        # vacuously -- exactly the silent failure strict mode prevents
        assert code == 0
        assert "(0 row(s))" in output


# -- property tests ----------------------------------------------------------

_NAMES = st.sampled_from(["a", "b", "n", "m", "actor", "x1"])
_LABELS = st.sampled_from(
    ["Malware", "ThreatActor", "Technique", "Malwear", "Zebra", None]
)
_REL_TYPES = st.sampled_from(["USES", "DROPS", "FOO_BAR", None])
_PROPS = st.sampled_from(["name", "merge_key", "nonesuch", "weight"])
_LITERALS = st.sampled_from(['"x"', "5", "3.5", "true", "null", '["a", "b"]'])


@st.composite
def queries(draw) -> str:
    """Parseable queries, valid and invalid alike."""
    variable = draw(_NAMES)
    label = draw(_LABELS)
    node = f"({variable}{':' + label if label else ''})"
    parts = [f"MATCH {node}"]
    if draw(st.booleans()):
        rel = draw(_REL_TYPES)
        hops = draw(st.sampled_from(["", "*", "*1..3", "*2.."]))
        other = draw(_NAMES)
        parts[0] += f"-[{':' + rel if rel else ''}{hops}]->({other})"
    if draw(st.booleans()):
        where_var = draw(_NAMES)
        prop = draw(_PROPS)
        op = draw(st.sampled_from(["=", "<", ">", "<>", "CONTAINS"]))
        literal = draw(_LITERALS)
        parts.append(f"WHERE {where_var}.{prop} {op} {literal}")
    return_var = draw(_NAMES)
    parts.append(f"RETURN {return_var}")
    if draw(st.booleans()):
        parts.append(f"ORDER BY {return_var} DESC")
    if draw(st.booleans()):
        parts.append("LIMIT 3")
    return " ".join(parts)


class TestAnalyzerProperties:
    @given(query=queries())
    @settings(max_examples=120, deadline=None)
    def test_never_crashes_on_parseable_queries(self, query):
        parsed = parse(query)  # by construction these parse
        diagnostics = CypherAnalyzer(closed_schema()).analyze(parsed, query)
        for diagnostic in diagnostics:
            assert diagnostic.rule.startswith("cypher/")
            assert diagnostic.format(query)  # rendering never crashes
            if diagnostic.span is not None:
                assert 0 <= diagnostic.span.start <= len(query)

    @given(
        variable=st.sampled_from(["a", "m", "node1"]),
        label=st.sampled_from(["Malware", "ThreatActor", "Technique"]),
        rel=st.sampled_from(["USES", "DROPS", "TARGETS"]),
        prop=st.sampled_from(sorted(BASE_PROPERTY_KEYS)),
        limit=st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_schema_valid_queries_have_no_errors(
        self, variable, label, rel, prop, limit
    ):
        query = (
            f"MATCH ({variable}:{label})-[:{rel}]->(other) "
            f'WHERE {variable}.{prop} = "v" '
            f"RETURN {variable}.{prop}, other LIMIT {limit}"
        )
        assert not errors(analyze(query))
