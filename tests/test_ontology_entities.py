"""Unit tests for the entity vocabulary and merge keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ontology import (
    CRF_ENTITY_TYPES,
    IOC_TYPES,
    Entity,
    EntityType,
    canonical_name,
)


class TestEntityType:
    def test_report_types_flagged(self):
        assert EntityType.MALWARE_REPORT.is_report
        assert EntityType.VULNERABILITY_REPORT.is_report
        assert EntityType.ATTACK_REPORT.is_report
        assert not EntityType.MALWARE.is_report

    def test_ioc_types_cover_paper_list(self):
        # file name, file path, IP, URL, email, domain, registry, hashes
        assert len(IOC_TYPES) == 8
        assert EntityType.REGISTRY.is_ioc
        assert not EntityType.TOOL.is_ioc

    def test_concept_partition(self):
        for entity_type in EntityType:
            flags = [entity_type.is_report, entity_type.is_ioc, entity_type.is_concept]
            assert sum(flags) == 1, entity_type

    def test_crf_types_are_concepts(self):
        for entity_type in CRF_ENTITY_TYPES:
            assert entity_type.is_concept


class TestCanonicalName:
    def test_case_and_whitespace_folded(self):
        assert canonical_name("  WannaCry ") == "wannacry"
        assert canonical_name("Cozy  Duke") == "cozy duke"

    def test_inner_newlines_folded(self):
        assert canonical_name("a\nb\tc") == "a b c"

    @given(st.text(min_size=1))
    def test_idempotent(self, text):
        once = canonical_name(text)
        assert canonical_name(once) == once


class TestEntity:
    def test_key_matches_for_case_variants(self):
        a = Entity(EntityType.MALWARE, "WannaCry")
        b = Entity(EntityType.MALWARE, "wannacry")
        assert a.key == b.key
        assert a.stable_id() == b.stable_id()

    def test_key_differs_across_types(self):
        a = Entity(EntityType.MALWARE, "mimikatz")
        b = Entity(EntityType.TOOL, "mimikatz")
        assert a.key != b.key

    def test_round_trip(self):
        entity = Entity(EntityType.IP, "10.0.0.1", {"first_seen": "2021-01-01"})
        assert Entity.from_dict(entity.to_dict()) == entity

    def test_merged_with_unions_attributes(self):
        a = Entity(EntityType.MALWARE, "emotet", {"family": "loader"})
        b = Entity(EntityType.MALWARE, "Emotet", {"active": True})
        merged = a.merged_with(b)
        assert merged.attributes == {"family": "loader", "active": True}

    def test_merged_with_other_wins_ties(self):
        a = Entity(EntityType.MALWARE, "emotet", {"severity": "low"})
        b = Entity(EntityType.MALWARE, "emotet", {"severity": "high"})
        assert a.merged_with(b).attributes["severity"] == "high"

    def test_merged_with_rejects_different_keys(self):
        a = Entity(EntityType.MALWARE, "emotet")
        b = Entity(EntityType.MALWARE, "trickbot")
        with pytest.raises(ValueError):
            a.merged_with(b)

    @given(
        st.sampled_from(list(EntityType)),
        st.text(min_size=1, max_size=40),
    )
    def test_round_trip_property(self, entity_type, name):
        entity = Entity(entity_type, name)
        assert Entity.from_dict(entity.to_dict()) == entity
