"""Unit tests for tokenization, sentence splitting and IOC protection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.tokenize import tokenize_sentences, tokenize_words
from repro.ontology import EntityType


class TestSentenceSplitting:
    def test_basic_split(self):
        sentences = tokenize_sentences("First sentence. Second one here.")
        assert len(sentences) == 2

    def test_abbreviation_not_split(self):
        sentences = tokenize_sentences("Use tools e.g. Mimikatz today. Done now.")
        assert len(sentences) == 2

    def test_question_and_exclamation(self):
        sentences = tokenize_sentences("Is it bad? Yes! Patch now.")
        assert len(sentences) == 3

    def test_ioc_dots_do_not_split(self):
        text = "Malware beacons to 10.0.0.1 daily. It then stops."
        assert len(tokenize_sentences(text)) == 2

    def test_url_does_not_split(self):
        text = "See https://a.example.com/x.y.z for info. Next sentence."
        sentences = tokenize_sentences(text)
        assert len(sentences) == 2
        assert any(t.is_ioc for t in sentences[0].tokens)

    def test_final_sentence_without_period(self):
        assert len(tokenize_sentences("No trailing period here")) == 1

    def test_empty_text(self):
        assert tokenize_sentences("") == []
        assert tokenize_sentences("   \n  ") == []


class TestIocProtection:
    TEXT = (
        "The wannacry ransomware connects to 192.168.1.10 and writes "
        r"C:\Windows\Temp\x.dll quickly."
    )

    def test_ioc_tokens_are_single(self):
        tokens = tokenize_words(self.TEXT)
        ioc_tokens = [t for t in tokens if t.is_ioc]
        assert [t.text for t in ioc_tokens] == [
            "192.168.1.10",
            r"C:\Windows\Temp\x.dll",
        ]
        assert ioc_tokens[0].ioc_type == EntityType.IP
        assert ioc_tokens[1].ioc_type == EntityType.FILE_PATH

    def test_unprotected_tokenization_shreds_iocs(self):
        protected = tokenize_words(self.TEXT, protect_iocs=True)
        naive = tokenize_words(self.TEXT, protect_iocs=False)
        assert len(naive) > len(protected)
        assert not any(t.is_ioc for t in naive)

    def test_offsets_point_into_original_text(self):
        for sentence in tokenize_sentences(self.TEXT):
            for token in sentence.tokens:
                assert self.TEXT[token.start : token.end] == token.text

    def test_sentence_spans_cover_original(self):
        text = "One here. Two 10.0.0.1 there. Three."
        for sentence in tokenize_sentences(text):
            assert text[sentence.start : sentence.end] == sentence.text

    def test_alphanumeric_names_stay_single_tokens(self):
        tokens = tokenize_words("rundll32 proxy execution on f5 big-ip")
        texts = [t.text for t in tokens]
        assert "rundll32" in texts
        assert "f5" in texts
        assert "big-ip" in texts

    @given(st.text(alphabet="abcdefgh ., ", max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_offsets_always_consistent(self, text):
        for sentence in tokenize_sentences(text):
            for token in sentence.tokens:
                assert text[token.start : token.end] == token.text

    def test_every_ioc_type_survives_protection(self):
        text = (
            "a@b.com 10.0.0.1 evil.com https://x.com/y "
            r"C:\a\b.exe HKLM\S\R x.exe "
            + "e" * 32
            + " CVE-2019-1000"
        )
        tokens = [t for t in tokenize_words(text) if t.is_ioc]
        kinds = {t.ioc_type for t in tokens}
        assert EntityType.EMAIL in kinds
        assert EntityType.IP in kinds
        assert EntityType.HASH in kinds
        assert EntityType.VULNERABILITY in kinds
