"""Unit tests for the Cypher-subset engine."""

import pytest

from repro.graphdb import (
    CypherEngine,
    CypherRuntimeError,
    CypherSyntaxError,
    PropertyGraph,
)


@pytest.fixture(scope="module")
def engine():
    graph = PropertyGraph()
    wannacry = graph.create_node("Malware", {"name": "wannacry", "year": 2017})
    emotet = graph.create_node("Malware", {"name": "emotet", "year": 2014})
    cozy = graph.create_node("ThreatActor", {"name": "cozyduke"})
    lazarus = graph.create_node("ThreatActor", {"name": "lazarus group"})
    t1 = graph.create_node("Technique", {"name": "credential dumping"})
    t2 = graph.create_node("Technique", {"name": "process injection"})
    t3 = graph.create_node("Technique", {"name": "spearphishing attachment"})
    f = graph.create_node("FileName", {"name": "tasksche.exe"})
    graph.create_edge(wannacry.node_id, "DROPS", f.node_id)
    graph.create_edge(wannacry.node_id, "ATTRIBUTED_TO", lazarus.node_id)
    graph.create_edge(cozy.node_id, "USES", t1.node_id)
    graph.create_edge(cozy.node_id, "USES", t2.node_id)
    graph.create_edge(lazarus.node_id, "USES", t1.node_id)
    graph.create_edge(lazarus.node_id, "USES", t3.node_id)
    return CypherEngine(graph)


class TestDemoQueries:
    """The exact query forms from the paper's demonstration outline."""

    def test_paper_cypher_query(self, engine):
        rows = engine.run('match (n) where n.name = "wannacry" return n')
        assert len(rows) == 1
        assert rows[0]["n"].properties["name"] == "wannacry"

    def test_techniques_used_by_actor(self, engine):
        rows = engine.run(
            'MATCH (a:ThreatActor {name: "cozyduke"})-[:USES]->(t:Technique) '
            "RETURN t.name ORDER BY t.name"
        )
        assert [r["t.name"] for r in rows] == [
            "credential dumping",
            "process injection",
        ]

    def test_actors_sharing_techniques(self, engine):
        rows = engine.run(
            'MATCH (a:ThreatActor {name: "cozyduke"})-[:USES]->(t)'
            "<-[:USES]-(other:ThreatActor) "
            'WHERE other.name <> "cozyduke" '
            "RETURN DISTINCT other.name"
        )
        assert [r["other.name"] for r in rows] == ["lazarus group"]


class TestMatching:
    def test_label_scan(self, engine):
        rows = engine.run("MATCH (m:Malware) RETURN m.name ORDER BY m.name")
        assert [r["m.name"] for r in rows] == ["emotet", "wannacry"]

    def test_property_anchor(self, engine):
        rows = engine.run('MATCH (m:Malware {name: "emotet"}) RETURN m.year')
        assert rows[0]["m.year"] == 2014

    def test_directed_edge_both_ways(self, engine):
        out = engine.run("MATCH (m:Malware)-[:DROPS]->(f) RETURN f.name")
        inward = engine.run("MATCH (f)<-[:DROPS]-(m:Malware) RETURN f.name")
        assert out[0]["f.name"] == inward[0]["f.name"] == "tasksche.exe"

    def test_undirected_edge(self, engine):
        rows = engine.run(
            'MATCH (x)-[:DROPS]-(y {name: "tasksche.exe"}) RETURN x.name'
        )
        assert rows[0]["x.name"] == "wannacry"

    def test_two_hop_chain(self, engine):
        rows = engine.run(
            "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t) "
            "RETURN t.name ORDER BY t.name"
        )
        assert [r["t.name"] for r in rows] == [
            "credential dumping",
            "spearphishing attachment",
        ]

    def test_multiple_paths_join_on_shared_variable(self, engine):
        rows = engine.run(
            "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a), (a)-[:USES]->(t) "
            "RETURN count(t) AS n"
        )
        assert rows[0]["n"] == 2

    def test_rel_variable_binding(self, engine):
        rows = engine.run("MATCH (a)-[r:USES]->(t) RETURN count(r) AS n")
        assert rows[0]["n"] == 4

    def test_no_match_returns_empty(self, engine):
        assert engine.run('MATCH (n {name: "nope"}) RETURN n') == []

    def test_same_variable_must_rebind_consistently(self, engine):
        rows = engine.run("MATCH (a)-[:USES]->(t)<-[:USES]-(a) RETURN a.name")
        # a cannot be two different nodes, but can match itself via
        # the same... no: traversing out then in from t yields both
        # users; binding forces a == a.
        assert {r["a.name"] for r in rows} == {"cozyduke", "lazarus group"}


class TestWhere:
    def test_comparisons(self, engine):
        rows = engine.run("MATCH (m:Malware) WHERE m.year > 2015 RETURN m.name")
        assert [r["m.name"] for r in rows] == ["wannacry"]

    def test_and_or_not(self, engine):
        rows = engine.run(
            "MATCH (m:Malware) WHERE m.year > 2000 AND NOT m.name = 'emotet' "
            "RETURN m.name"
        )
        assert [r["m.name"] for r in rows] == ["wannacry"]

    def test_contains_starts_ends(self, engine):
        assert engine.run(
            'MATCH (n) WHERE n.name CONTAINS "duke" RETURN n.name'
        )[0]["n.name"] == "cozyduke"
        assert engine.run(
            'MATCH (n) WHERE n.name STARTS WITH "laz" RETURN n.name'
        )[0]["n.name"] == "lazarus group"
        assert engine.run(
            'MATCH (n) WHERE n.name ENDS WITH ".exe" RETURN n.name'
        )[0]["n.name"] == "tasksche.exe"

    def test_in_list(self, engine):
        rows = engine.run(
            'MATCH (m:Malware) WHERE m.name IN ["emotet", "zeus"] RETURN m.name'
        )
        assert [r["m.name"] for r in rows] == ["emotet"]

    def test_is_null(self, engine):
        rows = engine.run(
            "MATCH (n:Technique) WHERE n.year IS NULL RETURN count(n) AS c"
        )
        assert rows[0]["c"] == 3
        rows = engine.run(
            "MATCH (n) WHERE n.year IS NOT NULL RETURN count(n) AS c"
        )
        assert rows[0]["c"] == 2


class TestReturnShaping:
    def test_alias(self, engine):
        rows = engine.run('MATCH (m:Malware {name: "emotet"}) RETURN m.name AS x')
        assert rows[0]["x"] == "emotet"

    def test_count_star(self, engine):
        rows = engine.run("MATCH (n) RETURN count(*) AS total")
        assert rows[0]["total"] == 8

    def test_count_groups_by_other_items(self, engine):
        rows = engine.run(
            "MATCH (a:ThreatActor)-[:USES]->(t) "
            "RETURN a.name, count(t) AS uses ORDER BY a.name"
        )
        assert [(r["a.name"], r["uses"]) for r in rows] == [
            ("cozyduke", 2),
            ("lazarus group", 2),
        ]

    def test_collect(self, engine):
        rows = engine.run(
            'MATCH (a:ThreatActor {name: "cozyduke"})-[:USES]->(t) '
            "RETURN a.name, collect(t.name) AS techniques"
        )
        assert sorted(rows[0]["techniques"]) == [
            "credential dumping",
            "process injection",
        ]

    def test_collect_distinct(self, engine):
        rows = engine.run(
            "MATCH (a:ThreatActor)-[:USES]->(t) "
            "RETURN collect(DISTINCT t.name) AS techniques"
        )
        assert sorted(rows[0]["techniques"]) == [
            "credential dumping",
            "process injection",
            "spearphishing attachment",
        ]

    def test_collect_over_empty_match(self, engine):
        rows = engine.run(
            'MATCH (a {name: "nope"})-[:USES]->(t) RETURN collect(t.name) AS ts'
        )
        assert rows[0]["ts"] == []

    def test_count_over_empty_match_is_zero(self, engine):
        rows = engine.run(
            'MATCH (a {name: "nope"})-[:USES]->(t) RETURN count(t) AS c'
        )
        assert rows[0]["c"] == 0

    def test_collect_in_where_rejected(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (n) WHERE collect(n) RETURN n")

    def test_count_distinct(self, engine):
        rows = engine.run(
            "MATCH (a:ThreatActor)-[:USES]->(t) RETURN count(DISTINCT t) AS n"
        )
        assert rows[0]["n"] == 3

    def test_order_skip_limit(self, engine):
        rows = engine.run(
            "MATCH (t:Technique) RETURN t.name ORDER BY t.name SKIP 1 LIMIT 1"
        )
        assert [r["t.name"] for r in rows] == ["process injection"]

    def test_order_desc(self, engine):
        rows = engine.run("MATCH (m:Malware) RETURN m.name ORDER BY m.year DESC")
        assert [r["m.name"] for r in rows] == ["wannacry", "emotet"]

    def test_distinct_rows(self, engine):
        rows = engine.run(
            "MATCH (a:ThreatActor)-[:USES]->(t) RETURN DISTINCT a.name ORDER BY a.name"
        )
        assert [r["a.name"] for r in rows] == ["cozyduke", "lazarus group"]


class TestVariableLengthPaths:
    @pytest.fixture(scope="class")
    def chain(self):
        graph = PropertyGraph()
        ids = {}
        for name in "abcdef":
            ids[name] = graph.create_node("N", {"name": name}).node_id
        for s, d in [("a", "b"), ("b", "c"), ("c", "d"), ("b", "e")]:
            graph.create_edge(ids[s], "R", ids[d])
        return CypherEngine(graph)

    def _names(self, engine, query):
        return sorted(r["x.name"] for r in engine.run(query))

    def test_bounded_range(self, chain):
        assert self._names(
            chain, 'MATCH (n {name: "a"})-[:R*1..2]->(x) RETURN x.name'
        ) == ["b", "c", "e"]

    def test_exact_hops(self, chain):
        assert self._names(
            chain, 'MATCH (n {name: "a"})-[:R*2]->(x) RETURN x.name'
        ) == ["c", "e"]

    def test_unbounded_star(self, chain):
        assert self._names(
            chain, 'MATCH (n {name: "a"})-[:R*]->(x) RETURN x.name'
        ) == ["b", "c", "d", "e"]

    def test_zero_min_includes_self(self, chain):
        assert self._names(
            chain, 'MATCH (n {name: "a"})-[:R*0..1]->(x) RETURN x.name'
        ) == ["a", "b"]

    def test_upper_only(self, chain):
        assert self._names(
            chain, 'MATCH (n {name: "a"})-[:R*..2]->(x) RETURN x.name'
        ) == ["b", "c", "e"]

    def test_reverse_direction(self, chain):
        assert self._names(
            chain, 'MATCH (x)-[:R*1..3]->(n {name: "d"}) RETURN x.name'
        ) == ["a", "b", "c"]

    def test_each_endpoint_once(self, chain):
        rows = chain.run('MATCH (n {name: "a"})-[:R*1..3]->(x) RETURN x.name')
        names = [r["x.name"] for r in rows]
        assert len(names) == len(set(names))

    def test_variable_binding_rejected(self, chain):
        with pytest.raises(CypherSyntaxError):
            chain.run("MATCH (n)-[r:R*1..2]->(x) RETURN x")

    def test_bad_range_rejected(self, chain):
        with pytest.raises(CypherSyntaxError):
            chain.run("MATCH (n)-[:R*3..1]->(x) RETURN x")


class TestCreate:
    def test_create_node_and_edge(self):
        graph = PropertyGraph()
        engine = CypherEngine(graph)
        engine.run(
            'CREATE (a:Malware {name: "x"})-[:DROPS]->(b:FileName {name: "y.exe"})'
        )
        assert graph.node_count == 2
        assert graph.edge_count == 1
        assert graph.edges().__next__().type == "DROPS"

    def test_create_reuses_variable(self):
        graph = PropertyGraph()
        engine = CypherEngine(graph)
        engine.run(
            'CREATE (a:X {name: "a"})-[:R]->(b:Y {name: "b"}), (a)-[:R]->(c:Y {name: "c"})'
        )
        assert graph.node_count == 3
        assert graph.edge_count == 2


class TestErrors:
    def test_syntax_error(self, engine):
        with pytest.raises(CypherSyntaxError):
            engine.run("MATCH (n RETURN n")
        with pytest.raises(CypherSyntaxError):
            engine.run("FROB (n) RETURN n")
        with pytest.raises(CypherSyntaxError):
            engine.run("MATCH (n) RETURN n; DROP")

    def test_unbound_variable(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (n) RETURN m.name")

    def test_count_in_where_rejected(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (n) WHERE count(n) > 1 RETURN n")
