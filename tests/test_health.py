"""Tests for the online health engine (SLO rules, alerts, quarantine).

Covers the three layers separately -- sliding windows, rule hysteresis
and the per-source state machine -- plus the feedback loop end to end:
a browned-out source must get quarantined by a live crawl, the verdicts
must be byte-identical across seeded virtual runs, and every surface
(`run --health-out`, `/health`, `repro health --from-trace`) must agree
on the canonical report JSON.
"""

import io
import json

import pytest

from repro import SecurityKG, SystemConfig
from repro.cli import main as cli_main
from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.obs import make_obs
from repro.obs.health import (
    DEFAULT_RULES,
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    HealthEngine,
    HealthRule,
    bucket_percentile,
    load_rules_file,
    render_health,
    replay_trace,
    rules_from_config,
)
from repro.runtime import VirtualClock, clock_from_name
from repro.ui.server import ExplorerAPI
from repro.websim import Brownout, SimulatedTransport, build_default_web


def fetch_span(source, end, ok=True, duration=0.01):
    """A minimal exported crawl.fetch span record."""
    return {
        "name": "crawl.fetch",
        "start": end - duration,
        "end": end,
        "attrs": {"source": source, "outcome": "ok" if ok else "failed"},
    }


def commit_span(end, duration):
    return {"name": "storage.commit", "start": end - duration, "end": end,
            "attrs": {}}


class TestBucketPercentile:
    BOUNDS = (0.1, 1.0, 10.0)

    def test_empty_is_zero(self):
        assert bucket_percentile([0, 0, 0, 0], self.BOUNDS, 0.95) == 0.0

    def test_single_bucket(self):
        assert bucket_percentile([5, 0, 0, 0], self.BOUNDS, 0.95) == 0.1

    def test_upper_bound_rule(self):
        # 10 samples in bucket 0, 90 in bucket 1 -> p95 in bucket 1
        assert bucket_percentile([10, 90, 0, 0], self.BOUNDS, 0.95) == 1.0
        # ... but p5 lands in bucket 0
        assert bucket_percentile([10, 90, 0, 0], self.BOUNDS, 0.05) == 0.1

    def test_inf_slot_returns_last_finite_bound(self):
        assert bucket_percentile([0, 0, 0, 4], self.BOUNDS, 0.95) == 10.0


class TestRuleConfig:
    def test_defaults_pass_through(self):
        rules, engine = rules_from_config(None)
        assert rules == tuple(sorted(DEFAULT_RULES, key=lambda r: r.name))
        assert engine == {}

    def test_field_override(self):
        rules, _ = rules_from_config(
            {"source-error-ratio": {"threshold": 0.5, "window": 30.0}}
        )
        rule = next(r for r in rules if r.name == "source-error-ratio")
        assert rule.threshold == 0.5
        assert rule.window == 30.0
        assert rule.min_samples == 4  # untouched fields keep defaults

    def test_disable_rule(self):
        rules, _ = rules_from_config({"frontier-stall": {"enabled": False}})
        assert "frontier-stall" not in {r.name for r in rules}

    def test_new_rule_needs_signal(self):
        rules, _ = rules_from_config(
            {"slow-commits": {"signal": "commit_p95", "threshold": 1.0,
                              "per_source": False}}
        )
        assert "slow-commits" in {r.name for r in rules}
        with pytest.raises(ValueError, match="signal"):
            rules_from_config({"no-such-rule": {"threshold": 1.0}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            rules_from_config({"source-error-ratio": {"treshold": 0.5}})

    def test_engine_entry(self):
        _, engine = rules_from_config(
            {"engine": {"interval": 2.0, "quarantine_after": 2}}
        )
        assert engine == {"interval": 2.0, "quarantine_after": 2}
        with pytest.raises(ValueError, match="engine keys"):
            rules_from_config({"engine": {"intervall": 2.0}})

    def test_non_dict_override_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            rules_from_config({"source-error-ratio": 0.5})

    def test_load_rules_file_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text('{"source-error-ratio": {"threshold": 0.9}}')
        assert load_rules_file(path) == {
            "source-error-ratio": {"threshold": 0.9}
        }

    def test_load_rules_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="must hold an object"):
            load_rules_file(path)

    def test_rules_sorted_and_serializable(self):
        rules, _ = rules_from_config(None)
        names = [r.name for r in rules]
        assert names == sorted(names)
        json.dumps([r.to_dict() for r in rules])


def make_engine(**kwargs):
    """A small, fast engine with one error-ratio rule."""
    defaults = dict(
        interval=1.0,
        quarantine_after=2,
        probe_backoff_base=5.0,
        probe_backoff_max=20.0,
        probe_timeout=3.0,
        degraded_rate_multiplier=4.0,
        degraded_min_interval=0.5,
    )
    defaults.update(kwargs)
    rules = defaults.pop(
        "rules",
        (HealthRule("err", "error_ratio", threshold=0.3, window=10.0,
                    min_samples=2, fire_after=1, resolve_after=2),),
    )
    return HealthEngine(rules, obs=make_obs(), **defaults)


class TestHysteresis:
    def test_fire_after_needs_consecutive_breaches(self):
        engine = make_engine(
            rules=(HealthRule("err", "error_ratio", threshold=0.3,
                              window=10.0, min_samples=2, fire_after=2),)
        )
        for t in (0.2, 0.4, 0.6):
            engine.observe_span(fetch_span("S", t, ok=False))
        engine.maybe_evaluate(1.0)
        assert not [a for a in engine.report()["alerts"] if a["firing"]]
        engine.maybe_evaluate(2.0)  # second consecutive breach
        firing = [a for a in engine.report()["alerts"] if a["firing"]]
        assert [a["rule"] for a in firing] == ["err"]
        assert firing[0]["source"] == "S"

    def test_resolve_after_clean_evaluations(self):
        engine = make_engine()
        for t in (0.2, 0.4):
            engine.observe_span(fetch_span("S", t, ok=False))
        engine.maybe_evaluate(1.0)
        assert engine.report()["alerts"][0]["firing"]
        # the 10 s window still holds the two bad events, so flood it
        # with good ones until the ratio drops under threshold
        for t in (1.2, 1.4, 1.6, 1.8, 2.2, 2.4, 2.6, 2.8):
            engine.observe_span(fetch_span("S", t, ok=True))
        engine.maybe_evaluate(3.0)  # clean #1 (2 bad / 10 total) -- firing
        assert engine.report()["alerts"][0]["firing"]
        engine.maybe_evaluate(4.0)  # clean #2 -- resolves
        alert = engine.report()["alerts"][0]
        assert not alert["firing"]
        assert alert["resolved_at"] == 4.0

    def test_min_samples_gate(self):
        engine = make_engine()
        engine.observe_span(fetch_span("S", 0.5, ok=False))  # one bad fetch
        engine.maybe_evaluate(1.0)
        assert engine.report()["alerts"] == []
        # the source is tracked (it produced fetch events) but stays
        # healthy: one sample is below the rule's min_samples
        assert engine.states() == {"S": HEALTHY}

    def test_no_data_holds_state(self):
        engine = make_engine()
        for t in (0.2, 0.4):
            engine.observe_span(fetch_span("S", t, ok=False))
        engine.maybe_evaluate(1.0)
        assert engine.states()["S"] == DEGRADED
        # windows empty out; silence must not read as recovery
        for deadline in range(2, 15):
            engine.maybe_evaluate(float(deadline))
        assert engine.states()["S"] in (DEGRADED, QUARANTINED)
        assert engine.report()["alerts"][0]["firing"]


class TestStateMachine:
    def test_full_lifecycle(self):
        engine = make_engine()
        metrics = engine.obs.metrics
        for t in (0.2, 0.3, 0.4, 0.5):
            engine.observe_span(fetch_span("S", t, ok=False))

        engine.maybe_evaluate(1.0)
        assert engine.states()["S"] == DEGRADED

        # Grandfathering: admissions at the transition instant still see
        # the pre-transition policy; strictly later ones see the new one.
        same_instant = engine.admit("S", 1.0)
        assert same_instant.allow and same_instant.rate_multiplier == 1.0
        later = engine.admit("S", 1.5)
        assert later.allow
        assert later.rate_multiplier == 4.0
        assert later.min_interval == 0.5

        engine.maybe_evaluate(2.0)  # breach #1 while degraded
        engine.maybe_evaluate(3.0)  # breach #2 -> quarantined
        assert engine.states()["S"] == QUARANTINED
        assert engine.admit("S", 3.0).allow  # same-instant grandfather

        denied = engine.admit("S", 3.5)
        assert not denied.allow and not denied.probe
        assert metrics.counter("health.skipped_fetches", source="S") == 1

        # probe backoff (base 5) expires at 8.0: exactly one probe grant
        probe = engine.admit("S", 8.5)
        assert not probe.allow and probe.probe
        assert metrics.counter("health.probes", source="S") == 1
        again = engine.admit("S", 8.6)
        assert not again.allow and not again.probe  # no double grant

        engine.observe_span(fetch_span("S", 8.7, ok=True))  # probe succeeds
        engine.maybe_evaluate(9.0)
        assert engine.states()["S"] == DEGRADED
        assert not engine.report()["alerts"][0]["firing"]
        assert metrics.counter("health.alerts_resolved", rule="err",
                               source="S") == 1

        for t in (9.1, 9.2, 9.3, 9.4):
            engine.observe_span(fetch_span("S", t, ok=True))
        engine.maybe_evaluate(10.0)
        assert engine.states()["S"] == HEALTHY
        healthy_again = engine.admit("S", 10.5)
        assert healthy_again.allow and healthy_again.rate_multiplier == 1.0

        assert [(t["from"], t["to"]) for t in engine.report()["transitions"]] == [
            (HEALTHY, DEGRADED),
            (DEGRADED, QUARANTINED),
            (QUARANTINED, DEGRADED),
            (DEGRADED, HEALTHY),
        ]
        assert metrics.counter("health.transitions", source="S",
                               to=QUARANTINED) == 1
        gauges = metrics.snapshot()["gauges"]
        assert gauges["health.source_state"]["source=S"] == 0
        assert gauges["health.rate_multiplier"]["source=S"] == 1.0

    def test_failed_probe_doubles_backoff(self):
        engine = make_engine()
        for t in (0.2, 0.3):
            engine.observe_span(fetch_span("S", t, ok=False))
        engine.maybe_evaluate(3.0)  # degrade + 2 breaches -> quarantine
        assert engine.states()["S"] == QUARANTINED
        probe = engine.admit("S", 8.0)
        assert probe.probe
        engine.observe_span(fetch_span("S", 8.1, ok=False))  # probe fails
        engine.maybe_evaluate(9.0)
        assert engine.states()["S"] == QUARANTINED
        state = engine.report()["sources"]["S"]
        assert state["probe_backoff"] == 10.0  # 5 -> 10
        # capped at probe_backoff_max eventually
        probe = engine.admit("S", state["probe_at"] + 0.5)
        assert probe.probe
        engine.observe_span(
            fetch_span("S", state["probe_at"] + 0.6, ok=False)
        )
        engine.maybe_evaluate(state["probe_at"] + 1.5)
        assert engine.report()["sources"]["S"]["probe_backoff"] == 20.0

    def test_probe_timeout_rearms(self):
        engine = make_engine()
        for t in (0.2, 0.3):
            engine.observe_span(fetch_span("S", t, ok=False))
        engine.maybe_evaluate(3.0)
        assert engine.admit("S", 8.0).probe
        # no fetch ever lands; after probe_timeout (3s) the grant re-arms
        engine.maybe_evaluate(12.0)
        assert engine.admit("S", 12.5).probe

    def test_unknown_source_is_healthy(self):
        engine = make_engine()
        admission = engine.admit("never-seen", 0.5)
        assert admission.allow
        assert admission.state == HEALTHY
        assert admission.rate_multiplier == 1.0


class TestGlobalSignals:
    def test_frontier_stall_requires_active_crawl(self):
        rule = HealthRule("stall", "frontier_stall", threshold=30.0,
                          window=60.0, min_samples=1, per_source=False)
        engine = make_engine(rules=(rule,))
        engine.observe_span(fetch_span("S", 1.0))
        engine.maybe_evaluate(40.0)  # crawl not active -> no signal
        assert engine.report()["alerts"] == []
        engine.crawl_started()
        engine.maybe_evaluate(80.0)
        alert = engine.report()["alerts"][0]
        assert alert["rule"] == "stall" and alert["source"] == ""
        engine.crawl_finished()

    def test_commit_latency_rule(self):
        rule = HealthRule("slow-commits", "commit_p95", threshold=2.5,
                          window=60.0, min_samples=4, per_source=False)
        engine = make_engine(rules=(rule,))
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.observe_span(commit_span(t, duration=3.0))
        engine.maybe_evaluate(5.0)
        alert = engine.report()["alerts"][0]
        assert alert["rule"] == "slow-commits"
        assert alert["value"] > 2.5  # bucket upper-bound estimate

    def test_check_reject_ratio_reads_registry(self):
        rule = HealthRule("checks", "check_reject_ratio", threshold=0.5,
                          window=60.0, min_samples=4, per_source=False)
        engine = make_engine(rules=(rule,))
        metrics = engine.obs.metrics
        metrics.inc("pipeline.reports_rejected", 3, reason="empty")
        metrics.inc("pipeline.items", 1, stage="check", outcome="ok")
        engine.maybe_evaluate(1.0)
        alert = engine.report()["alerts"][0]
        assert alert["rule"] == "checks"
        assert alert["value"] == 0.75


class TestReport:
    def test_canonical_and_json_safe(self):
        engine = make_engine()
        for t in (0.2, 0.4):
            engine.observe_span(fetch_span("S", t, ok=False))
        report = engine.finalize(1.0)
        assert list(report) == sorted(report)
        json.dumps(report)
        assert report["enabled"] is True
        assert report["evaluations"] >= 1
        assert report["sources"]["S"]["state"] == DEGRADED

    def test_report_json_stable_bytes(self):
        engine = make_engine()
        engine.observe_span(fetch_span("S", 0.2, ok=False))
        engine.finalize(1.0)
        assert engine.report_json() == engine.report_json()
        assert engine.report_json().endswith("\n")

    def test_write_report_atomic(self, tmp_path):
        engine = make_engine()
        path = tmp_path / "health.json"
        engine.write_report(path)
        assert path.read_text() == engine.report_json()

    def test_render_health_text(self):
        engine = make_engine()
        for t in (0.2, 0.4):
            engine.observe_span(fetch_span("S", t, ok=False))
        engine.finalize(1.0)
        text = render_health(engine.report())
        assert "health @" in text
        assert "S" in text and DEGRADED in text
        assert "FIRING err" in text
        assert "healthy -> degraded" in text

    def test_render_disabled(self):
        assert "disabled" in render_health({"enabled": False})


class TestReplayTrace:
    def test_replay_matches_online(self):
        spans = [fetch_span("S", t, ok=False) for t in (0.2, 0.3, 0.4, 0.5)]
        engine = replay_trace(
            spans,
            {"source-error-ratio": {"window": 10.0, "min_samples": 2}},
            interval=1.0,
        )
        report = engine.report()
        assert report["sources"]["S"]["state"] != HEALTHY
        assert any(a["rule"] == "source-error-ratio" for a in report["alerts"])

    def test_replay_deterministic(self):
        spans = [fetch_span("S", 0.1 * k, ok=k % 3 == 0) for k in range(1, 40)]
        first = replay_trace(spans, interval=0.5).report_json()
        second = replay_trace(spans, interval=0.5).report_json()
        assert first == second

    def test_replay_empty_trace(self):
        report = replay_trace([]).report()
        assert report["evaluations"] == 0
        assert report["sources"] == {}


BROWNOUT_SOURCES = ["AdvisoryHub", "MalwareVault", "SecureListing", "ThreatPedia"]
BROWNOUT_RULES = {
    "source-error-ratio": {"window": 10.0, "min_samples": 2},
    "source-fetch-latency": {"enabled": False},
}


def brownout_crawl(web, brownouts, feedback=True):
    """One seeded virtual crawl of four sources with gray failures."""
    clock = VirtualClock()
    obs = make_obs(clock)
    transport = SimulatedTransport(
        web, time_scale=1.0, clock=clock, brownouts=brownouts
    )
    fetcher = Fetcher(transport, backoff=0.05, obs=obs)
    health = None
    if feedback:
        health = HealthEngine.from_config(
            BROWNOUT_RULES, clock=clock, obs=obs,
            interval=0.25, quarantine_after=1,
            probe_backoff_base=0.5, probe_backoff_max=4.0, probe_timeout=5.0,
        )
        obs.tracer.on_finish = health.observe_span
    engine = CrawlEngine(
        build_all_crawlers(BROWNOUT_SOURCES), fetcher,
        num_threads=4, obs=obs, health=health,
    )
    result = engine.crawl()
    if health is not None:
        health.finalize(clock.now())
    return result, health, obs, clock


class TestBrownoutIntegration:
    @pytest.fixture(scope="class")
    def brown_web(self):
        # Enough articles per source that the sick source still has
        # queued URLs by the time quarantine kicks in.
        return build_default_web(scenario_count=12, reports_per_site=30)

    @pytest.fixture(scope="class")
    def sick_crawl(self, brown_web):
        brownout = Brownout("malwarevault.example", start=0.15, end=60.0)
        return brownout_crawl(brown_web, [brownout])

    def test_sick_source_quarantined(self, sick_crawl):
        _result, health, _obs, _clock = sick_crawl
        report = health.report()
        assert report["sources"]["MalwareVault"]["state"] == QUARANTINED
        pairs = [
            (t["source"], t["to"]) for t in report["transitions"]
        ]
        assert ("MalwareVault", DEGRADED) in pairs
        assert ("MalwareVault", QUARANTINED) in pairs
        # healthy sources never escalate
        assert all(t["source"] == "MalwareVault" for t in report["transitions"])

    def test_quarantine_skips_fetches(self, sick_crawl):
        result, health, obs, _clock = sick_crawl
        assert result.skipped
        assert all("malwarevault" in url for url in result.skipped)
        counters = obs.metrics.snapshot()["counters"]
        # every skipped URL is either a plain denial or a probe upgrade
        denials = counters["health.skipped_fetches"].get("source=MalwareVault", 0)
        probes = counters.get("health.probes", {}).get("source=MalwareVault", 0)
        assert denials + probes == len(result.skipped)
        assert denials >= 1

    def test_healthy_sources_unaffected(self, sick_crawl, brown_web):
        result, _health, _obs, _clock = sick_crawl
        healthy = [
            d for d in result.documents if d.source != "MalwareVault"
        ]
        expected = sum(
            brown_web.site_by_name(name).report_count
            for name in BROWNOUT_SOURCES
            if name != "MalwareVault"
        )
        by_source = {d.source for d in healthy}
        assert by_source == set(BROWNOUT_SOURCES) - {"MalwareVault"}
        assert len({d.url for d in healthy if d.page_no == 1}) == expected

    def test_verdicts_byte_identical(self, brown_web, sick_crawl):
        _result, health, obs, _clock = sick_crawl
        brownout = Brownout("malwarevault.example", start=0.15, end=60.0)
        _r2, health2, obs2, _c2 = brownout_crawl(brown_web, [brownout])
        assert health.report_json() == health2.report_json()
        assert obs.tracer.export_jsonl() == obs2.tracer.export_jsonl()

    def test_verdict_spans_traced(self, sick_crawl):
        _result, _health, obs, _clock = sick_crawl
        verdicts = [
            s for s in obs.tracer.export() if s["name"] == "health.verdict"
        ]
        assert verdicts
        assert all("evaluation" in s["attrs"] for s in verdicts)
        probe_spans = [
            s
            for s in obs.tracer.export()
            if s["name"] == "crawl.fetch" and s["attrs"].get("probe")
        ]
        assert probe_spans  # quarantine probes are marked


SMALL = dict(
    scenario_count=5,
    reports_per_site=2,
    seed=7,
    clock="virtual",
    connectors=["graph", "search"],
    health=True,
)
SMALL_CLI = (
    "--scenarios", "5", "--reports-per-site", "2", "--clock", "virtual",
)


def run_health_system():
    clock = clock_from_name("virtual")
    obs = make_obs(clock)
    kg = SecurityKG(SystemConfig(**SMALL), clock=clock, obs=obs)
    report = kg.run_once()
    return kg, report


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def health_run(self):
        return run_health_system()

    def test_system_report_carries_health(self, health_run):
        _kg, report = health_run
        assert report.health is not None
        assert report.health["enabled"] is True
        assert report.health["evaluations"] >= 1

    def test_endpoint_matches_engine(self, health_run):
        kg, _report = health_run
        status, payload = ExplorerAPI(kg).handle("GET", "/health")
        assert status == 200
        assert payload == kg.health_report() == kg.health.report()

    def test_endpoint_matches_health_out_bytes(self, health_run, tmp_path):
        kg, _report = health_run
        _status, payload = ExplorerAPI(kg).handle("GET", "/api/health")
        path = tmp_path / "health.json"
        kg.health.write_report(path)
        assert path.read_text() == (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def test_disabled_system_reports_disabled(self):
        kg = SecurityKG(
            SystemConfig(scenario_count=4, reports_per_site=1, clock="virtual")
        )
        assert kg.health is None
        assert kg.health_report() == {"enabled": False}
        status, payload = ExplorerAPI(kg).handle("GET", "/health")
        assert status == 200 and payload == {"enabled": False}

    def test_health_report_deterministic(self, health_run):
        kg, _report = health_run
        kg2, _report2 = run_health_system()
        assert kg.health.report_json() == kg2.health.report_json()


class TestCliHealth:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("health") / "trace.jsonl"
        code, output = self.run_cli(
            "run", *SMALL_CLI, "--trace", str(path)
        )
        assert code == 0, output
        return path

    def test_run_health_prints_report(self):
        code, output = self.run_cli("run", *SMALL_CLI, "--health")
        assert code == 0
        assert "health @" in output
        assert "alerts:" in output

    def test_run_health_out_matches_endpoint_json(self, tmp_path):
        path = tmp_path / "health.json"
        code, output = self.run_cli(
            "run", *SMALL_CLI, "--health-out", str(path)
        )
        assert code == 0
        assert "wrote health report" in output
        written = path.read_text()
        kg, _report = run_health_system()
        _status, payload = ExplorerAPI(kg).handle("GET", "/health")
        assert written == json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def test_health_from_trace(self, trace_file):
        code, output = self.run_cli("health", "--from-trace", str(trace_file))
        assert code == 0
        assert "health @" in output

    def test_health_from_trace_json_and_out(self, trace_file, tmp_path):
        out_path = tmp_path / "health.json"
        code, output = self.run_cli(
            "health", "--from-trace", str(trace_file),
            "--json", "--out", str(out_path),
        )
        assert code == 0
        report = json.loads(output[output.index("{"):])
        assert report["enabled"] is True
        assert json.loads(out_path.read_text()) == report

    def test_health_from_trace_deterministic(self, trace_file, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            code, _ = self.run_cli(
                "health", "--from-trace", str(trace_file), "--out", str(path)
            )
            assert code == 0
        assert first.read_bytes() == second.read_bytes()

    def test_health_rules_override(self, trace_file, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text('{"frontier-stall": {"enabled": false}}')
        code, output = self.run_cli(
            "health", "--from-trace", str(trace_file),
            "--rules", str(rules), "--json",
        )
        assert code == 0
        report = json.loads(output[output.index("{"):])
        assert "frontier-stall" not in {r["name"] for r in report["rules"]}

    def test_bad_rules_file_exits_2(self, trace_file, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text('{"no-such-rule": {"threshold": 1}}')
        code, output = self.run_cli(
            "health", "--from-trace", str(trace_file), "--rules", str(rules)
        )
        assert code == 2
        assert "health rules error" in output

    def test_stats_from_trace_json(self, trace_file):
        code, output = self.run_cli(
            "stats", "--from-trace", str(trace_file), "--json"
        )
        assert code == 0
        summary = json.loads(output)
        assert summary["spans"] > 0
        assert "crawl.fetch" in summary["names"]

    def test_stats_graph_json(self):
        code, output = self.run_cli("stats", *SMALL_CLI, "--json")
        assert code == 0
        stats = json.loads(output)
        assert stats["nodes"] >= 0
        assert set(stats) >= {"edges", "labels", "edge_types"}
