"""Unit tests for IOC recognition."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.ioc import classify_ioc, find_iocs
from repro.ontology import EntityType
from repro.websim import iocgen


class TestFindIocs:
    def test_each_kind_detected(self):
        text = (
            "Seen: 10.1.2.3, evil-site.com, https://evil-site.com/gate, "
            "billing@evil-site.com, tasksche.exe, "
            r"C:\Windows\Temp\x.dll, "
            r"HKLM\Software\Run\svc, "
            "d41d8cd98f00b204e9800998ecf8427e and CVE-2021-34527."
        )
        kinds = {m.type for m in find_iocs(text)}
        assert kinds == {
            EntityType.IP,
            EntityType.DOMAIN,
            EntityType.URL,
            EntityType.EMAIL,
            EntityType.FILE_NAME,
            EntityType.FILE_PATH,
            EntityType.REGISTRY,
            EntityType.HASH,
            EntityType.VULNERABILITY,
        }

    def test_url_wins_over_inner_domain(self):
        matches = find_iocs("Visit https://bad.example.com/x now")
        assert len([m for m in matches if m.type == EntityType.DOMAIN]) == 0

    def test_email_wins_over_inner_domain(self):
        matches = find_iocs("From billing@bad-host.net today")
        assert [m.type for m in matches] == [EntityType.EMAIL]

    def test_path_wins_over_inner_file_name(self):
        matches = find_iocs(r"Dropped C:\Temp\payload.exe on disk")
        assert [m.type for m in matches] == [EntityType.FILE_PATH]

    def test_path_with_spaces_in_segments(self):
        text = r"Wrote C:\Program Files\Common Files\winupd.dll today"
        (match,) = find_iocs(text)
        assert match.text == r"C:\Program Files\Common Files\winupd.dll"

    def test_registry_with_spaced_hive(self):
        text = r"Key HKLM\Software\Microsoft\Windows NT\CurrentVersion\Winlogon\x set"
        (match,) = find_iocs(text)
        assert match.type == EntityType.REGISTRY
        assert match.text.endswith(r"Winlogon\x")

    def test_trailing_punctuation_stripped(self):
        (match,) = find_iocs(r"It used C:\Temp\a.exe.")
        assert match.text == r"C:\Temp\a.exe"

    def test_offsets_are_exact(self):
        text = "blocked 8.8.8.8 and 1.2.3.4 today"
        for match in find_iocs(text):
            assert text[match.start : match.end] == match.text

    def test_invalid_ip_not_matched(self):
        assert not [
            m for m in find_iocs("version 1.2.3.256 is out") if m.type == EntityType.IP
        ]

    def test_hash_lengths_only(self):
        assert not find_iocs("deadbeef" * 3)  # 24 hex chars: not a hash length

    def test_no_iocs_in_plain_prose(self):
        assert find_iocs("The quick brown fox jumps over the lazy dog") == []


class TestClassifyIoc:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            ("10.0.0.1", EntityType.IP),
            ("evil.com", EntityType.DOMAIN),
            ("https://evil.com/x", EntityType.URL),
            ("a@b.com", EntityType.EMAIL),
            ("x.exe", EntityType.FILE_NAME),
            (r"C:\a\b.exe", EntityType.FILE_PATH),
            (r"HKCU\Software\Run\x", EntityType.REGISTRY),
            ("a" * 64, EntityType.HASH),
            ("CVE-2020-1234", EntityType.VULNERABILITY),
            ("not an ioc", None),
            ("", None),
        ],
    )
    def test_classification(self, value, expected):
        assert classify_ioc(value) == expected


class TestGeneratedIocsRoundTrip:
    """Every IOC the corpus generator emits must be recognised."""

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_generated_values_classify(self, seed):
        rng = random.Random(seed)
        checks = [
            (iocgen.make_ip(rng), EntityType.IP),
            (iocgen.make_domain(rng), EntityType.DOMAIN),
            (iocgen.make_url(rng), EntityType.URL),
            (iocgen.make_email(rng), EntityType.EMAIL),
            (iocgen.make_hash(rng), EntityType.HASH),
            (iocgen.make_file_name(rng), EntityType.FILE_NAME),
            (iocgen.make_file_path(rng), EntityType.FILE_PATH),
            (iocgen.make_registry_key(rng), EntityType.REGISTRY),
            (iocgen.make_cve(rng), EntityType.VULNERABILITY),
        ]
        for value, expected in checks:
            assert classify_ioc(value) == expected, value
