"""Shared fixtures.

The trained recogniser fixture is session-scoped because CRF training
is the most expensive setup in the suite; tests that need a trained
model share one small instance.
"""

import random

import pytest

from repro.nlp import EntityRecognizer
from repro.websim.scenario import generate_report_content, make_scenarios


def training_texts(scenario_count: int = 18, variants: int = 2) -> list[str]:
    """Small known-name training corpus for fast model fixtures."""
    scenarios = make_scenarios(scenario_count, seed=11, known_only=True)
    texts = []
    for scenario in scenarios:
        for k in range(variants):
            content = generate_report_content(
                scenario,
                random.Random(f"{scenario.scenario_id}-{k}"),
                sentence_count=8,
            )
            texts.append(" ".join(gs.text for gs in content.truth.sentences))
    return texts


@pytest.fixture(scope="session")
def small_recognizer() -> EntityRecognizer:
    """A quickly-trained entity recogniser shared across the session."""
    return EntityRecognizer.train(
        training_texts(), max_iterations=60, embedding_dim=16
    )


@pytest.fixture(scope="session")
def small_web():
    """A compact synthetic web shared across the session."""
    from repro.websim import build_default_web

    return build_default_web(scenario_count=12, reports_per_site=5)
