"""Shared fixtures.

The trained recogniser fixture is session-scoped because CRF training
is the most expensive setup in the suite; tests that need a trained
model share one small instance.
"""

import random

import pytest

from repro.nlp import EntityRecognizer
from repro.websim.scenario import generate_report_content, make_scenarios


def training_texts(scenario_count: int = 18, variants: int = 2) -> list[str]:
    """Small known-name training corpus for fast model fixtures."""
    scenarios = make_scenarios(scenario_count, seed=11, known_only=True)
    texts = []
    for scenario in scenarios:
        for k in range(variants):
            content = generate_report_content(
                scenario,
                random.Random(f"{scenario.scenario_id}-{k}"),
                sentence_count=8,
            )
            texts.append(" ".join(gs.text for gs in content.truth.sentences))
    return texts


@pytest.fixture(scope="session")
def small_recognizer() -> EntityRecognizer:
    """A quickly-trained entity recogniser shared across the session."""
    return EntityRecognizer.train(
        training_texts(), max_iterations=60, embedding_dim=16
    )


@pytest.fixture(scope="session")
def small_web():
    """A compact synthetic web shared across the session."""
    from repro.websim import build_default_web

    return build_default_web(scenario_count=12, reports_per_site=5)


@pytest.fixture(scope="session", autouse=True)
def lock_order_witness():
    """Witness every named-lock acquisition against the static hierarchy.

    Enabling the witness makes :func:`repro.runtime.named_lock` hand out
    instrumented :class:`WitnessLock` wrappers for the whole session, so
    the crawl-engine, storage-engine and UI suites all record their real
    acquisition orders.  With the static closure installed, an
    acquisition that *reverses* a known hierarchy edge raises
    immediately; at teardown, every observed edge must additionally be a
    subgraph of the static hierarchy from
    :func:`repro.analysis.concurrency.analyze_package`.
    """
    from repro.analysis.concurrency import analyze_package
    from repro.runtime import WITNESS

    model, _ = analyze_package()
    closure = model.closure()
    WITNESS.reset()
    WITNESS.enable(hierarchy=closure)
    yield WITNESS
    bad = WITNESS.violations(closure, known_names=model.lock_names())
    WITNESS.disable()
    assert not bad, (
        "runtime lock acquisitions contradict the static lock hierarchy: "
        f"{bad}; fix the ordering or the analyzer, never the baseline "
        "(see CONCURRENCY.md)"
    )
