"""Unit tests for the quadtree and force layout."""

import math
import random

import pytest

from repro.ui.layout import ForceLayout, LayoutConfig
from repro.ui.quadtree import Body, QuadTree, exact_repulsion


def random_bodies(n, seed=0, spread=500.0):
    rng = random.Random(seed)
    return [
        Body(x=rng.uniform(0, spread), y=rng.uniform(0, spread), key=i)
        for i in range(n)
    ]


class TestQuadTree:
    def test_mass_conserved(self):
        bodies = random_bodies(50)
        tree = QuadTree.build(bodies)
        assert tree.root.mass == pytest.approx(50.0)

    def test_center_of_mass(self):
        bodies = [Body(0, 0), Body(10, 0)]
        tree = QuadTree.build(bodies)
        assert tree.root.center_of_mass == pytest.approx((5.0, 0.0))

    def test_empty_tree(self):
        tree = QuadTree.build([])
        assert tree.force_on(Body(0, 0), strength=1.0) == (0.0, 0.0)

    def test_single_body_no_self_force(self):
        body = Body(3, 4)
        tree = QuadTree.build([body])
        fx, fy = tree.force_on(body, strength=100.0)
        assert (fx, fy) == (0.0, 0.0)

    def test_two_bodies_repel_symmetrically(self):
        a, b = Body(0, 0), Body(10, 0)
        tree = QuadTree.build([a, b])
        fa = tree.force_on(a, strength=1.0)
        fb = tree.force_on(b, strength=1.0)
        assert fa[0] == pytest.approx(-fb[0])
        assert fa[0] < 0 < fb[0]  # pushed apart along x

    def test_approximation_close_to_exact(self):
        bodies = random_bodies(120, seed=3)
        tree = QuadTree.build(bodies, theta=0.5)
        for body in bodies[:10]:
            approx = tree.force_on(body, strength=100.0)
            exact = exact_repulsion(bodies, body, strength=100.0)
            magnitude = math.hypot(*exact) or 1.0
            error = math.hypot(approx[0] - exact[0], approx[1] - exact[1])
            assert error / magnitude < 0.15, (approx, exact)

    def test_theta_zero_equals_exact(self):
        bodies = random_bodies(40, seed=4)
        tree = QuadTree.build(bodies, theta=0.0)
        for body in bodies[:5]:
            approx = tree.force_on(body, strength=10.0)
            exact = exact_repulsion(bodies, body, strength=10.0)
            assert approx[0] == pytest.approx(exact[0], rel=1e-6, abs=1e-6)
            assert approx[1] == pytest.approx(exact[1], rel=1e-6, abs=1e-6)

    def test_coincident_points_do_not_recurse_forever(self):
        bodies = [Body(5.0, 5.0) for _ in range(4)]
        tree = QuadTree.build(bodies)
        assert tree.root.mass == pytest.approx(4.0)


class TestForceLayout:
    def _star_layout(self, use_bh=True, n=8):
        layout = ForceLayout(
            config=LayoutConfig(width=400, height=400), use_barnes_hut=use_bh
        )
        layout.add_node("hub")
        for i in range(n):
            layout.add_node(f"leaf{i}", near="hub")
        layout.set_edges([("hub", f"leaf{i}") for i in range(n)])
        return layout

    def test_layout_converges(self):
        layout = self._star_layout()
        steps = layout.run(iterations=200, tolerance=1.0)
        assert steps <= 200

    def test_layout_separates_nodes(self):
        layout = self._star_layout()
        layout.run(iterations=150)
        assert layout.overlap_count() == 0

    def test_edge_lengths_near_ideal(self):
        layout = self._star_layout(n=4)
        layout.run(iterations=200)
        assert layout.mean_edge_length_error() < layout.config.ideal_edge_length

    def test_pinned_node_stays(self):
        layout = self._star_layout()
        layout.pin("hub", 123.0, 77.0)
        layout.run(iterations=30)
        assert layout.positions["hub"] == (123.0, 77.0)

    def test_unpin_releases(self):
        layout = self._star_layout()
        layout.pin("hub", 123.0, 77.0)
        layout.unpin("hub")
        layout.run(iterations=10)
        assert layout.positions["hub"] != (123.0, 77.0)

    def test_add_near_places_close(self):
        layout = ForceLayout()
        layout.add_node("a")
        layout.add_node("b", near="a")
        ax, ay = layout.positions["a"]
        bx, by = layout.positions["b"]
        assert math.hypot(ax - bx, ay - by) <= layout.config.ideal_edge_length * 1.5

    def test_remove_node_drops_edges(self):
        layout = self._star_layout(n=2)
        layout.remove_node("leaf0")
        assert "leaf0" not in layout.positions
        layout.step()  # must not crash on stale edges

    def test_exact_and_bh_agree_qualitatively(self):
        bh = self._star_layout(use_bh=True)
        exact = self._star_layout(use_bh=False)
        bh.run(iterations=100)
        exact.run(iterations=100)
        assert bh.overlap_count() == exact.overlap_count() == 0

    def test_empty_layout_step(self):
        assert ForceLayout().step() == 0.0
