"""Unit tests for the analyzer and BM25 search index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search import SearchIndex, analyze


class TestAnalyzer:
    def test_lowercases_and_drops_stopwords(self):
        terms = analyze("The Malware AND the Files")
        assert "the" not in terms
        assert "malware" in terms

    def test_lemma_variants_added(self):
        terms = analyze("it encrypts files")
        assert "encrypts" in terms and "encrypt" in terms

    def test_ioc_kept_whole_and_fragmented(self):
        terms = analyze("beacons to update-relay3.xyz now")
        assert "update-relay3.xyz" in terms
        assert "relay3" in terms

    def test_url_fragments(self):
        terms = analyze("from https://evil.example/gate today")
        assert "evil" in terms and "gate" in terms

    def test_punctuation_dropped(self):
        assert "," not in analyze("a, b, c")


@pytest.fixture
def index():
    idx = SearchIndex()
    idx.add(
        "r1",
        {
            "title": "WannaCry: anatomy of an evolving threat",
            "body": "The wannacry ransomware encrypts files and spreads fast.",
            "source": "ThreatPedia",
        },
    )
    idx.add(
        "r2",
        {
            "title": "Emotet returns",
            "body": "The emotet trojan drops payloads and encrypts nothing.",
            "source": "SecureListing",
        },
    )
    idx.add(
        "r3",
        {
            "title": "Quarterly roundup",
            "body": "Many families including wannacry and emotet were active.",
            "source": "ThreatPedia",
        },
    )
    return idx


class TestSearch:
    def test_basic_ranking_title_boost(self, index):
        hits = index.search("wannacry")
        assert hits[0].doc_id == "r1"  # title match outranks body-only
        assert {h.doc_id for h in hits} == {"r1", "r3"}

    def test_and_mode(self, index):
        hits = index.search("wannacry emotet", mode="and")
        assert [h.doc_id for h in hits] == ["r3"]

    def test_or_mode_includes_partial(self, index):
        hits = index.search("wannacry emotet", mode="or")
        assert {h.doc_id for h in hits} == {"r1", "r2", "r3"}

    def test_filters(self, index):
        hits = index.search("wannacry", filters={"source": "ThreatPedia"})
        assert {h.doc_id for h in hits} == {"r1", "r3"}
        assert index.search("emotet", filters={"source": "Nope"}) == []

    def test_limit(self, index):
        assert len(index.search("emotet", limit=1)) == 1

    def test_lemma_matching(self, index):
        hits = index.search("encrypt")
        assert {h.doc_id for h in hits} == {"r1", "r2"}

    def test_empty_query(self, index):
        assert index.search("") == []
        assert index.search("the and of") == []

    def test_unknown_term(self, index):
        assert index.search("zzzzz") == []

    def test_scores_descending(self, index):
        hits = index.search("wannacry emotet files")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestPhraseSearch:
    def test_exact_phrase(self, index):
        hits = index.phrase_search("wannacry ransomware")
        assert [h.doc_id for h in hits] == ["r1"]

    def test_phrase_order_matters(self, index):
        assert index.phrase_search("ransomware wannacry") == []

    def test_single_term_phrase(self, index):
        assert {h.doc_id for h in index.phrase_search("emotet")} == {"r2", "r3"}


class TestLifecycle:
    def test_reindex_replaces(self, index):
        index.add("r1", {"title": "totally different", "body": "nothing here"})
        assert index.search("wannacry", mode="and") and all(
            h.doc_id != "r1" for h in index.search("wannacry")
        )

    def test_remove(self, index):
        assert index.remove("r1")
        assert not index.remove("r1")
        assert all(h.doc_id != "r1" for h in index.search("wannacry"))
        assert index.doc_count == 2

    def test_save_load_round_trip(self, index, tmp_path):
        path = tmp_path / "index.json"
        index.save(path)
        loaded = SearchIndex.load(path)
        assert [h.doc_id for h in loaded.search("wannacry")] == [
            h.doc_id for h in index.search("wannacry")
        ]
        assert loaded.doc_count == index.doc_count

    @given(
        st.lists(
            st.text(alphabet="abcdef ghij", min_size=1, max_size=30),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_every_indexed_doc_findable_by_own_terms(self, bodies):
        idx = SearchIndex()
        for i, body in enumerate(bodies):
            idx.add(f"d{i}", {"body": body})
        for i, body in enumerate(bodies):
            terms = analyze(body)
            if not terms:
                continue
            hits = idx.search(terms[0], limit=len(bodies))
            assert any(h.doc_id == f"d{i}" for h in hits)
