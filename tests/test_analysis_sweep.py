"""Sweep: every Cypher string shipped in the repo passes analysis.

Walks ``src/repro/apps``, ``examples/`` and ``benchmarks/``, extracts
every string literal (including f-strings, with interpolations replaced
by a placeholder) that looks like a Cypher query, and asserts the
semantic analyzer finds no errors against the closed ontology schema.
A failure here means we ship a query that strict mode would reject.
"""

import ast
import re
from pathlib import Path

import pytest

from repro.analysis.cypher_check import CypherAnalyzer, ontology_schema
from repro.analysis.diagnostics import errors
from repro.graphdb.cypher.parser import parse

REPO = Path(__file__).resolve().parents[1]
SWEEP_ROOTS = [
    REPO / "src" / "repro" / "apps",
    REPO / "examples",
    REPO / "benchmarks",
]

_QUERY_RE = re.compile(
    r"^\s*(explain\s+)?(match|create)\s*\(", re.IGNORECASE
)


def _string_value(node: ast.expr) -> str | None:
    """The text of a string literal; f-string slots become ``"x"``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:  # FormattedValue: substitute a neutral placeholder
                parts.append("x")
        return "".join(parts)
    return None


def shipped_queries() -> list[tuple[str, str]]:
    """(location, query) for every Cypher-looking string literal."""
    found: list[tuple[str, str]] = []
    for root in SWEEP_ROOTS:
        for path in sorted(root.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            # constants inside an f-string are fragments, not queries
            fragments = {
                id(piece)
                for node in ast.walk(tree)
                if isinstance(node, ast.JoinedStr)
                for piece in node.values
            }
            for node in ast.walk(tree):
                if id(node) in fragments:
                    continue
                text = _string_value(node)
                if text is None or not _QUERY_RE.match(text):
                    continue
                location = f"{path.relative_to(REPO)}:{node.lineno}"
                found.append((location, text))
    return found


QUERIES = shipped_queries()


def test_sweep_found_the_known_call_sites():
    # guard against the extractor silently going blind
    assert len(QUERIES) >= 8
    files = {location.split(":")[0] for location, _ in QUERIES}
    assert any("threat_search" in f for f in files)
    assert any("quickstart" in f for f in files)
    assert any("test_bench_search" in f for f in files)


@pytest.mark.parametrize(
    "location,query", QUERIES, ids=[location for location, _ in QUERIES]
)
def test_shipped_query_passes_analysis(location, query):
    parsed = parse(query)  # must at least be parseable
    diagnostics = CypherAnalyzer(ontology_schema(closed=True)).analyze(
        parsed, query
    )
    hard = errors(diagnostics)
    assert not hard, f"{location}: " + "; ".join(d.format(query) for d in hard)
