"""Unit tests for the HTML tokenizer, DOM builder and CSS selectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.htmlparse import (
    SelectorSyntaxError,
    Token,
    TokenKind,
    parse,
    tokenize,
)


class TestTokenizer:
    def test_simple_tags_and_text(self):
        tokens = tokenize("<p>hello</p>")
        assert [t.kind for t in tokens] == [
            TokenKind.START_TAG,
            TokenKind.TEXT,
            TokenKind.END_TAG,
        ]
        assert tokens[1].data == "hello"

    def test_attributes_quoted_unquoted_boolean(self):
        (token,) = tokenize('<a href="/x" class=big disabled data-k=\'v\'>')[:1]
        assert token.attrs == {
            "href": "/x",
            "class": "big",
            "disabled": "",
            "data-k": "v",
        }

    def test_entities_decoded_in_text_and_attrs(self):
        tokens = tokenize('<a title="a&amp;b">x &lt; y</a>')
        assert tokens[0].attrs["title"] == "a&b"
        assert tokens[1].data == "x < y"

    def test_script_content_is_raw(self):
        tokens = tokenize('<script>if (a < b) { x = "<p>"; }</script>')
        assert tokens[1].kind is TokenKind.TEXT
        assert "<p>" in tokens[1].data

    def test_comment_and_doctype(self):
        tokens = tokenize("<!DOCTYPE html><!-- hi --><p>x</p>")
        assert tokens[0].kind is TokenKind.DOCTYPE
        assert tokens[1].kind is TokenKind.COMMENT
        assert tokens[1].data.strip() == "hi"

    def test_self_closing_and_void(self):
        tokens = tokenize("<br/><img src=x>")
        assert tokens[0].self_closing
        assert tokens[1].data == "img"

    def test_gt_inside_quoted_attr(self):
        (token,) = tokenize('<a title="a > b">')[:1]
        assert token.attrs["title"] == "a > b"

    def test_stray_lt_is_text(self):
        tokens = tokenize("1 < 2")
        assert "".join(t.data for t in tokens if t.kind is TokenKind.TEXT) == "1 < 2"

    @given(st.text(alphabet=st.characters(blacklist_characters="<>"), max_size=50))
    def test_plain_text_round_trips(self, text):
        tokens = tokenize(text)
        joined = "".join(t.data for t in tokens if t.kind is TokenKind.TEXT)
        import html

        assert joined == html.unescape(text)


class TestDom:
    def test_nesting(self):
        doc = parse("<div><p>a</p><p>b</p></div>")
        div = doc.find("div")
        assert [p.inner_text() for p in div.find_all("p")] == ["a", "b"]

    def test_auto_close_li(self):
        doc = parse("<ul><li>one<li>two<li>three</ul>")
        assert [li.inner_text() for li in doc.find_all("li")] == [
            "one",
            "two",
            "three",
        ]

    def test_auto_close_table_cells(self):
        doc = parse("<table><tr><td>a<td>b<tr><td>c</table>")
        assert len(doc.find_all("tr")) == 2
        assert [td.inner_text() for td in doc.find_all("td")] == ["a", "b", "c"]

    def test_misnested_end_tag_dropped(self):
        doc = parse("<div><p>a</b></p></div>")
        assert doc.find("p").inner_text() == "a"

    def test_end_tag_closes_intervening(self):
        doc = parse("<div><span>a</div>b")
        div = doc.find("div")
        assert div.inner_text() == "a"

    def test_title_and_body(self):
        doc = parse("<html><head><title>T</title></head><body>B</body></html>")
        assert doc.title == "T"
        assert doc.body.inner_text() == "B"

    def test_text_skips_script_style(self):
        doc = parse("<body>a<script>var x;</script><style>p{}</style>b</body>")
        assert doc.text() == "ab" or "var" not in doc.text()

    def test_text_block_separation(self):
        doc = parse("<div><p>one</p><p>two</p></div>")
        assert doc.text().splitlines() == ["one", "two"]

    def test_inline_whitespace_collapsed(self):
        doc = parse("<p>a\n   b   <b> c</b></p>")
        assert doc.find("p").inner_text() == "a b c"


class TestSelectors:
    DOC = parse(
        """
        <div id="main" class="wrap">
          <ul class="ioc list">
            <li class="ioc" data-kind="ip"><code>10.0.0.1</code></li>
            <li class="ioc" data-kind="domain"><code>evil.com</code></li>
            <li class="other">not an ioc</li>
          </ul>
          <div class="nested"><span class="ioc">inner</span></div>
          <a href="/threats/wannacry.html">link</a>
        </div>
        """
    )

    def test_tag(self):
        assert len(self.DOC.select("li")) == 3

    def test_class(self):
        assert len(self.DOC.select(".ioc")) == 4

    def test_compound_tag_class(self):
        assert len(self.DOC.select("li.ioc")) == 2

    def test_id(self):
        assert self.DOC.select_one("#main").get("class") == "wrap"

    def test_attr_presence_and_equality(self):
        assert len(self.DOC.select("[data-kind]")) == 2
        (ip,) = self.DOC.select('[data-kind="ip"]')
        assert ip.inner_text() == "10.0.0.1"

    def test_attr_prefix_suffix_contains(self):
        assert self.DOC.select_one("a[href^=/threats]") is not None
        assert self.DOC.select_one("a[href$=.html]") is not None
        assert self.DOC.select_one("a[href*=wannacry]") is not None
        assert self.DOC.select_one("a[href^=/nope]") is None

    def test_descendant_combinator(self):
        assert len(self.DOC.select("ul code")) == 2

    def test_child_combinator(self):
        assert len(self.DOC.select("ul > li")) == 3
        assert len(self.DOC.select("div > span")) == 1
        # code is not a direct child of ul
        assert len(self.DOC.select("ul > code")) == 0

    def test_group(self):
        assert len(self.DOC.select("code, span.ioc")) == 3

    def test_document_order_no_duplicates(self):
        results = self.DOC.select("li, .ioc, code")
        tags = [el.tag for el in results]
        assert len(results) == len(set(id(el) for el in results))
        # the <ul class="ioc list"> precedes its <li> children
        assert tags[0] == "ul"
        assert tags.index("ul") < tags.index("li") < tags.index("code")

    def test_multi_class_element(self):
        assert self.DOC.select_one("ul.ioc.list") is not None

    def test_bad_selector_raises(self):
        with pytest.raises(SelectorSyntaxError):
            self.DOC.select("li[")
        with pytest.raises(SelectorSyntaxError):
            self.DOC.select("li,, p")
        with pytest.raises(SelectorSyntaxError):
            self.DOC.select("> p")


class TestRealWorldShapes:
    def test_definition_list_parsing(self):
        doc = parse("<dl><dt>Severity</dt><dd>high</dd><dt>CVE</dt><dd>CVE-2021-1</dd></dl>")
        keys = [dt.inner_text() for dt in doc.select("dl dt")]
        values = [dd.inner_text() for dd in doc.select("dl dd")]
        assert dict(zip(keys, values)) == {"Severity": "high", "CVE": "CVE-2021-1"}

    def test_pre_preserves_lines(self):
        doc = parse("<pre>line1\nline2</pre>")
        assert "line1" in doc.text() and "line2" in doc.text()
