"""Doctest verification plus feature-extraction unit tests.

Module docstrings carry runnable examples; this suite executes them so
the documentation cannot drift from the code.
"""

import doctest

import pytest

import repro.core.system
import repro.crawlers
import repro.graphdb
import repro.htmlparse
import repro.search
import repro.websim
from repro.nlp.features import FeatureExtractor, word_shape
from repro.nlp.gazetteer import Gazetteer
from repro.nlp.tokenize import tokenize_words
from repro.ontology import EntityType


@pytest.mark.parametrize(
    "module",
    [
        repro.htmlparse,
        repro.search,
        repro.graphdb,
        repro.websim,
        repro.crawlers,
        repro.core.system,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"


class TestWordShape:
    @pytest.mark.parametrize(
        ("word", "shape"),
        [
            ("WannaCry", "XxXx"),
            ("emotet", "x"),
            ("CVE-2021-1234", "X-d-d"),
            ("10.0.0.1", "d.d.d.d"),
            ("T1059", "Xd"),
            ("", ""),
        ],
    )
    def test_shapes(self, word, shape):
        assert word_shape(word) == shape

    def test_shape_truncates_long_words(self):
        assert len(word_shape("a" * 100)) <= 12


class TestFeatureExtractor:
    GAZ = Gazetteer.from_lists({EntityType.MALWARE: ["emotet"]})

    def test_core_feature_families_present(self):
        tokens = tokenize_words("The Emotet trojan connects to 10.0.0.1")
        features = FeatureExtractor(gazetteer=self.GAZ).extract(tokens)
        emotet_feats = features[1]
        assert "w=emotet" in emotet_feats
        assert "lemma=emotet" in emotet_feats
        assert any(f.startswith("pos=") for f in emotet_feats)
        assert any(f.startswith("shape=") for f in emotet_feats)
        assert "gaz=Malware" in emotet_feats
        assert "cap" in emotet_feats

    def test_ioc_token_features(self):
        tokens = tokenize_words("connects to 10.0.0.1 daily")
        features = FeatureExtractor().extract(tokens)
        ip_index = [t.text for t in tokens].index("10.0.0.1")
        assert "ioc" in features[ip_index]
        assert "ioctype=IP" in features[ip_index]

    def test_context_window_features(self):
        tokens = tokenize_words("alpha beta gamma")
        features = FeatureExtractor(window=1).extract(tokens)
        assert "w[-1]=alpha" in features[1]
        assert "w[+1]=gamma" in features[1]
        assert "w[-1]=<s>" in features[0]
        assert "w[+1]=</s>" in features[2]

    def test_window_zero_drops_context(self):
        tokens = tokenize_words("alpha beta gamma")
        features = FeatureExtractor(window=0).extract(tokens)
        assert not any(f.startswith("w[") for f in features[1])

    def test_bos_eos_markers(self):
        tokens = tokenize_words("one two")
        features = FeatureExtractor().extract(tokens)
        assert "bos" in features[0]
        assert "eos" in features[-1]

    def test_no_gazetteer_no_gaz_features(self):
        tokens = tokenize_words("emotet spreads")
        features = FeatureExtractor(gazetteer=None).extract(tokens)
        assert not any(f.startswith("gaz=") for f in features[0])


class TestCrfInFullPipeline:
    def test_crf_extractor_feeds_the_knowledge_graph(self, small_recognizer):
        """The paper's extractor inside the full system: unseen-name
        malware reaches the graph, which regex/gazetteer cannot do."""
        from repro import SecurityKG, SystemConfig

        config = SystemConfig(
            scenario_count=6,
            reports_per_site=2,
            sources=["SecureListing", "InfoSec Ledger"],
            connectors=["graph"],
        )
        crf_system = SecurityKG(config, recognizer=small_recognizer)
        crf_system.run_once()
        regex_system = SecurityKG(
            SystemConfig(**{**config.__dict__, "recognizer": "regex"})
        )
        regex_system.run_once()

        crf_labels = crf_system.graph.label_counts()
        regex_labels = regex_system.graph.label_counts()
        assert crf_labels.get("Malware", 0) > regex_labels.get("Malware", 0)
        assert crf_labels.get("ThreatActor", 0) > regex_labels.get("ThreatActor", 0)
        # behavioural relations require recognised concepts
        assert any(
            t in crf_system.graph.edge_type_counts()
            for t in ("DROPS", "CONNECTS_TO", "USES", "ENCRYPTS")
        )
