"""Unit tests for traversal helpers."""

import pytest

from repro.graphdb import (
    PropertyGraph,
    bfs_nodes,
    induced_subgraph,
    k_hop_subgraph,
    random_subgraph,
    shortest_path,
)


@pytest.fixture
def chain_graph():
    """a -> b -> c -> d plus an isolated node e."""
    graph = PropertyGraph()
    ids = {}
    for name in "abcde":
        ids[name] = graph.create_node("N", {"name": name}).node_id
    graph.create_edge(ids["a"], "R", ids["b"])
    graph.create_edge(ids["b"], "R", ids["c"])
    graph.create_edge(ids["c"], "R", ids["d"])
    return graph, ids


class TestBfs:
    def test_depth_limit(self, chain_graph):
        graph, ids = chain_graph
        reached = bfs_nodes(graph, ids["a"], max_depth=2)
        names = {node.properties["name"] for node, _d in reached}
        assert names == {"a", "b", "c"}

    def test_depths_reported(self, chain_graph):
        graph, ids = chain_graph
        depths = {
            node.properties["name"]: depth
            for node, depth in bfs_nodes(graph, ids["a"], max_depth=3)
        }
        assert depths == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_max_nodes_cap(self, chain_graph):
        graph, ids = chain_graph
        reached = bfs_nodes(graph, ids["a"], max_depth=5, max_nodes=2)
        assert len(reached) == 2

    def test_unknown_start_raises(self, chain_graph):
        graph, _ids = chain_graph
        with pytest.raises(KeyError):
            bfs_nodes(graph, 12345)


class TestSubgraphs:
    def test_k_hop_includes_internal_edges(self, chain_graph):
        graph, ids = chain_graph
        sub = k_hop_subgraph(graph, ids["b"], hops=1)
        names = {n.properties["name"] for n in sub.nodes}
        assert names == {"a", "b", "c"}
        assert len(sub.edges) == 2  # a->b and b->c

    def test_induced_subgraph_drops_external_edges(self, chain_graph):
        graph, ids = chain_graph
        sub = induced_subgraph(graph, [ids["a"], ids["c"]])
        assert len(sub.nodes) == 2
        assert sub.edges == []

    def test_random_subgraph_size_and_determinism(self, chain_graph):
        graph, _ids = chain_graph
        sub1 = random_subgraph(graph, 3, seed=5)
        sub2 = random_subgraph(graph, 3, seed=5)
        assert len(sub1.nodes) == 3
        assert sub1.node_ids == sub2.node_ids

    def test_random_subgraph_covers_all_when_big(self, chain_graph):
        graph, _ids = chain_graph
        sub = random_subgraph(graph, 100, seed=1)
        assert len(sub.nodes) == 5

    def test_random_subgraph_empty_graph(self):
        assert random_subgraph(PropertyGraph(), 3).nodes == []


class TestShortestPath:
    def test_path_found(self, chain_graph):
        graph, ids = chain_graph
        path = shortest_path(graph, ids["a"], ids["d"])
        assert [n.properties["name"] for n in path] == ["a", "b", "c", "d"]

    def test_path_is_undirected(self, chain_graph):
        graph, ids = chain_graph
        path = shortest_path(graph, ids["d"], ids["a"])
        assert path is not None

    def test_no_path_to_isolated(self, chain_graph):
        graph, ids = chain_graph
        assert shortest_path(graph, ids["a"], ids["e"]) is None

    def test_same_node(self, chain_graph):
        graph, ids = chain_graph
        path = shortest_path(graph, ids["a"], ids["a"])
        assert len(path) == 1

    def test_depth_bound(self, chain_graph):
        graph, ids = chain_graph
        assert shortest_path(graph, ids["a"], ids["d"], max_depth=2) is None
