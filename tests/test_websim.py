"""Unit tests for the synthetic OSCTI web."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htmlparse import parse
from repro.ontology import EntityType
from repro.websim import (
    DEFAULT_SITE_SPECS,
    SimulatedTransport,
    TEMPLATES,
    TransportError,
    build_default_web,
    make_scenarios,
    realize,
)
from repro.websim import iocgen
from repro.websim.render import FAMILIES, render_report
from repro.websim.scenario import generate_report_content
from repro.websim.textgen import SLOT_TYPES, Template, template_slots


@pytest.fixture(scope="module")
def web():
    return build_default_web(scenario_count=12, reports_per_site=6)


class TestSeedsAndIocGen:
    def test_default_web_has_40_plus_sources(self):
        assert len(DEFAULT_SITE_SPECS) >= 40

    def test_ip_shape(self):
        rng = random.Random(1)
        for _ in range(50):
            octets = iocgen.make_ip(rng).split(".")
            assert len(octets) == 4
            assert all(1 <= int(o) <= 254 for o in octets)

    def test_hash_lengths(self):
        rng = random.Random(2)
        assert len(iocgen.make_hash(rng, "md5")) == 32
        assert len(iocgen.make_hash(rng, "sha1")) == 40
        assert len(iocgen.make_hash(rng, "sha256")) == 64

    def test_cve_shape(self):
        rng = random.Random(3)
        cve = iocgen.make_cve(rng)
        assert cve.startswith("CVE-")
        year = int(cve.split("-")[1])
        assert 2014 <= year <= 2021

    def test_registry_and_path_have_backslashes(self):
        rng = random.Random(4)
        assert "\\" in iocgen.make_registry_key(rng)
        assert iocgen.make_file_path(rng).startswith("C:\\")

    def test_email_and_url_shapes(self):
        rng = random.Random(5)
        assert "@" in iocgen.make_email(rng)
        assert iocgen.make_url(rng).startswith(("http://", "https://"))


class TestTemplates:
    def test_realize_spans_are_exact(self):
        template = Template(
            "The {malware} ransomware dropped {file_name} on hosts.",
            (("malware", "dropped", "file_name"),),
        )
        sentence = realize(
            template, {"malware": "wannacry", "file_name": "tasksche.exe"}
        )
        for mention in sentence.mentions:
            assert sentence.text[mention.start : mention.end] == mention.text
        assert sentence.relations[0].head_text == "wannacry"
        assert sentence.relations[0].tail_text == "tasksche.exe"

    def test_missing_slot_raises(self):
        template = TEMPLATES[0]
        with pytest.raises(KeyError):
            realize(template, {})

    def test_all_template_slots_are_known(self):
        for template in TEMPLATES:
            for slot in template_slots(template):
                assert slot in SLOT_TYPES, slot

    def test_all_relation_slots_appear_in_pattern(self):
        for template in TEMPLATES:
            slots = set(template_slots(template))
            for head, _verb, tail in template.relations:
                assert head in slots and tail in slots

    def test_relation_verbs_normalise(self):
        from repro.ontology import RelationType, normalize_verb

        for template in TEMPLATES:
            for _head, verb, _tail in template.relations:
                assert normalize_verb(verb) != RelationType.RELATED_TO, verb


class TestScenario:
    def test_scenarios_deterministic(self):
        assert repr(make_scenarios(5, seed=3)) == repr(make_scenarios(5, seed=3))

    def test_report_content_has_truth(self):
        scenario = make_scenarios(1, seed=3)[0]
        content = generate_report_content(scenario, random.Random(1))
        assert content.title
        assert content.truth.sentences
        assert any(s.mentions for s in content.truth.sentences)
        assert content.ioc_table[EntityType.IP.value]

    def test_ioc_fraction_limits_disclosure(self):
        scenario = make_scenarios(1, seed=3)[0]
        full = generate_report_content(
            scenario, random.Random(1), ioc_fraction=1.0
        )
        partial = generate_report_content(
            scenario, random.Random(1), ioc_fraction=0.34
        )
        assert sum(map(len, partial.ioc_table.values())) < sum(
            map(len, full.ioc_table.values())
        )

    @given(st.sampled_from(FAMILIES))
    @settings(max_examples=10, deadline=None)
    def test_every_family_renders_parseable_html(self, family):
        scenario = make_scenarios(1, seed=3)[0]
        content = generate_report_content(scenario, random.Random(1))
        html = render_report(content, family, "Test Site")
        doc = parse(html)
        assert content.title in doc.title


class TestWeb:
    def test_total_reports(self, web):
        assert web.total_reports == 42 * 6

    def test_urls_unique_across_sites(self, web):
        seen = set()
        for site in web.sites:
            for url in site.pages():
                assert url not in seen
                seen.add(url)

    def test_ground_truth_reachable_from_url(self, web):
        site = web.sites[3]
        article = site.articles()[2]
        truth = site.ground_truth(article.url)
        assert truth is article.content
        # query-string page maps to the same article
        if article.extra_page_url:
            assert site.ground_truth(article.extra_page_url) is article.content

    def test_scenario_overlap_across_sites(self, web):
        # At least one scenario is covered by two different sites.
        coverage = {}
        for site in web.sites[:6]:
            for article in site.articles():
                coverage.setdefault(article.content.scenario.scenario_id, set()).add(
                    site.name
                )
        assert any(len(sites) >= 2 for sites in coverage.values())

    def test_robots_served(self, web):
        transport = SimulatedTransport(web, time_scale=0.0)
        response = transport.fetch(web.sites[0].robots_url)
        assert response.ok
        assert "Disallow: /private/" in response.body


class TestIncrementalPublishing:
    def test_existing_articles_unchanged(self):
        web = build_default_web(scenario_count=8, reports_per_site=3)
        site = web.sites[0]
        before = {a.url: a.content.title for a in site.articles()}
        site.publish_more(2)
        after = {a.url: a.content.title for a in site.articles()}
        assert len(after) == len(before) + 2
        for url, title in before.items():
            assert after[url] == title

    def test_index_pages_list_new_articles(self):
        web = build_default_web(scenario_count=8, reports_per_site=3)
        site = web.sites[0]
        site.publish_more(9)  # forces a second index page (page size 10)
        pages = site.pages()
        assert f"{site.base_url}/index/2" in pages

    def test_publish_everywhere(self):
        web = build_default_web(scenario_count=8, reports_per_site=3)
        total = web.publish_everywhere(1)
        assert total == 42 * 4


class TestTransport:
    def test_unknown_url_is_404(self, web):
        transport = SimulatedTransport(web, time_scale=0.0)
        assert transport.fetch("https://nowhere.example/x").status == 404

    def test_failures_deterministic(self, web):
        url = web.sites[0].index_url

        def run():
            transport = SimulatedTransport(web, time_scale=0.0, failure_rate=0.5)
            outcomes = []
            for _ in range(8):
                try:
                    outcomes.append(transport.fetch(url).status)
                except TransportError:
                    outcomes.append("err")
            return outcomes

        assert run() == run()

    def test_retry_attempt_gets_fresh_roll(self, web):
        url = web.sites[0].index_url
        transport = SimulatedTransport(web, time_scale=0.0, failure_rate=0.5)
        outcomes = set()
        for _ in range(16):
            try:
                outcomes.add(transport.fetch(url).status)
            except TransportError:
                outcomes.add("err")
        assert 200 in outcomes  # some attempt eventually succeeds

    def test_stats_recorded(self, web):
        transport = SimulatedTransport(web, time_scale=0.0)
        transport.fetch(web.sites[0].index_url)
        transport.fetch(web.sites[1].index_url)
        snapshot = transport.stats.snapshot()
        assert snapshot["total"] == 2
        assert len(snapshot["by_host"]) == 2
