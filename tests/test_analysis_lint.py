"""Tests for the repo invariant lint."""

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    apply_baseline,
    lint_file,
    lint_paths,
    load_baseline,
    main,
    write_baseline,
)


def lint_source(tmp_path: Path, source: str, name: str = "mod.py"):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(target)


def rules(findings) -> list[str]:
    return [f.rule for f in findings]


class TestDeterminismRules:
    def test_global_random_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random

            def pick():
                return random.randint(0, 10)
            """,
        )
        assert rules(findings) == ["det/global-random"]

    def test_from_import_random(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from random import choice

            def pick(items):
                return choice(items)
            """,
        )
        assert rules(findings) == ["det/global-random"]

    def test_seeded_random_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random

            def make(seed):
                return random.Random(seed).randint(0, 10)
            """,
        )
        assert findings == []

    def test_time_time_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rules(findings) == ["det/wall-clock"]

    def test_raw_sleep_and_monotonic_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def elapsed(start):
                time.sleep(0.01)
                return time.monotonic() - start
            """,
        )
        assert rules(findings) == ["det/raw-sleep"] * 2

    def test_from_import_sleep_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from time import sleep

            def nap():
                sleep(1)
            """,
        )
        assert rules(findings) == ["det/raw-sleep"]

    def test_perf_counter_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def wall():
                return time.perf_counter()
            """,
        )
        assert findings == []

    def test_clock_module_may_sleep(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def sleep(seconds):
                time.sleep(seconds)

            def now():
                return time.monotonic()
            """,
            name="runtime/clock.py",
        )
        assert findings == []

    def test_raw_sleep_suppressible(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def nap():
                time.sleep(3600)  # repro: allow[raw-sleep]
            """,
        )
        assert findings == []

    def test_datetime_now_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from datetime import datetime
            import datetime as dt

            def stamps():
                return datetime.now(), dt.datetime.utcnow(), dt.date.today()
            """,
        )
        assert rules(findings) == ["det/wall-clock"] * 3

    def test_sanctioned_module_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random

            def roll():
                return random.random()
            """,
            name="websim/rnd.py",
        )
        assert findings == []


class TestExceptionRules:
    def test_bare_except(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def safe(fn):
                try:
                    return fn()
                except:
                    return None
            """,
        )
        assert rules(findings) == ["err/bare-except"]

    def test_silent_swallow(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def safe(fn):
                try:
                    return fn()
                except Exception:
                    pass
            """,
        )
        assert rules(findings) == ["err/silent-swallow"]

    def test_handled_exception_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def safe(fn, log):
                try:
                    return fn()
                except ValueError as error:
                    log(error)
                    return None
            """,
        )
        assert findings == []


class TestUnnamedThreadRule:
    def test_thread_without_name_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import threading

            def run(work):
                threading.Thread(target=work, daemon=True).start()
            """,
        )
        assert rules(findings) == ["conc/unnamed-thread"]

    def test_named_thread_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import threading

            def run(work):
                threading.Thread(
                    target=work, name="worker-0", daemon=True
                ).start()
            """,
        )
        assert findings == []

    def test_bare_thread_import_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from threading import Thread

            def run(work):
                Thread(target=work).start()
            """,
        )
        assert rules(findings) == ["conc/unnamed-thread"]

    def test_suppression_applies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import threading

            def run(work):
                # repro: allow[unnamed-thread]
                threading.Thread(target=work).start()
            """,
        )
        assert findings == []


class TestSerializabilityRule:
    def make(self, tmp_path, body: str):
        return lint_source(tmp_path, body, name="ontology/intermediate.py")

    def test_json_safe_fields_pass(self, tmp_path):
        findings = self.make(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass
            class Record:
                name: str
                weight: float
                pages: list[str] = field(default_factory=list)
                meta: dict[str, object] = field(default_factory=dict)
                pair: tuple[str, int] = ("", 0)
                maybe: str | None = None
            """,
        )
        assert findings == []

    def test_unserializable_field_flagged(self, tmp_path):
        findings = self.make(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Record:
                name: str
                seen: set[str]
                blob: bytes = b""
            """,
        )
        assert rules(findings) == ["ser/unserializable-field"] * 2

    def test_non_str_dict_keys_flagged(self, tmp_path):
        findings = self.make(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass
            class Record:
                by_id: dict[int, str] = field(default_factory=dict)
            """,
        )
        assert rules(findings) == ["ser/unserializable-field"]

    def test_nested_dataclass_reference_allowed(self, tmp_path):
        findings = self.make(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass
            class Inner:
                value: str

            @dataclass
            class Outer:
                items: list[Inner] = field(default_factory=list)
            """,
        )
        assert findings == []


class TestAtomicWriteRule:
    def test_path_replace_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from pathlib import Path

            def save(path: Path, text: str) -> None:
                tmp = path.with_suffix(".tmp")
                tmp.write_text(text)
                tmp.replace(path)
            """,
        )
        assert rules(findings) == ["store/raw-atomic-write"]

    def test_os_replace_and_rename_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import os

            def save(a, b, c, d):
                os.replace(a, b)
                os.rename(c, d)
            """,
        )
        assert rules(findings) == ["store/raw-atomic-write"] * 2

    def test_shutil_move_and_from_import_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import shutil
            from os import replace

            def save(a, b, c, d):
                shutil.move(a, b)
                replace(c, d)
            """,
        )
        assert rules(findings) == ["store/raw-atomic-write"] * 2

    def test_str_replace_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def clean(text: str) -> str:
                return text.replace("a", "b")
            """,
        )
        assert rules(findings) == []

    def test_storage_package_sanctioned(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import os

            def commit(tmp, path):
                os.replace(tmp, path)
            """,
            name="repro/storage/atomic.py",
        )
        assert rules(findings) == []

    def test_suppression_applies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import os

            def save(a, b):
                os.replace(a, b)  # repro: allow[raw-atomic-write]
            """,
        )
        assert rules(findings) == []


class TestSuppression:
    def test_same_line_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro: allow[det/wall-clock]
            """,
        )
        assert findings == []

    def test_line_above_and_leaf_rule(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                # repro: allow[wall-clock]
                return time.time()
            """,
        )
        assert findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro: allow[global-random]
            """,
        )
        assert rules(findings) == ["det/wall-clock"]


class TestBaseline:
    def test_baseline_roundtrip_suppresses_known_findings(self, tmp_path):
        source = """
            import time

            def stamp():
                return time.time()
            """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_new_finding_not_covered(self, tmp_path):
        old = lint_source(tmp_path, "import time\n\ndef a():\n    return time.time()\n")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(old, baseline_path)
        new = lint_source(
            tmp_path,
            "import time\n\ndef a():\n    return time.time()\n\n"
            "def b():\n    return time.time_ns()\n",
        )
        fresh = apply_baseline(new, load_baseline(baseline_path))
        assert len(fresh) == 1
        assert "time_ns" in fresh[0].message

    def test_count_aware_matching(self, tmp_path):
        # two identical lines, baseline covers only one
        source = (
            "import time\n\ndef a():\n    return time.time()\n\n"
            "def b():\n    return time.time()\n"
        )
        findings = lint_source(tmp_path, source)
        assert len(findings) == 2
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings[:1], baseline_path)
        entries = json.loads(baseline_path.read_text())
        assert entries[0]["count"] == 1
        remaining = apply_baseline(findings, load_baseline(baseline_path))
        assert len(remaining) == 1


class TestCLIEntry:
    def run_lint(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_repo_is_clean_modulo_baseline(self):
        code, output = self.run_lint()
        assert code == 0, output
        assert "0 findings" in output

    def test_seeded_wall_clock_exits_nonzero(self, tmp_path):
        # acceptance criterion: a new time.time() in a deterministic
        # module makes the lint fail
        bad = tmp_path / "seeded.py"
        bad.write_text(
            "import time\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        code, output = self.run_lint(str(bad))
        assert code == 1
        assert "det/wall-clock" in output
        assert "seeded.py" in output

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "seeded.py"
        bad.write_text(
            "import time\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "base.json"
        code, _ = self.run_lint(
            str(bad), "--baseline", str(baseline), "--write-baseline"
        )
        assert code == 0
        code, output = self.run_lint(str(bad), "--baseline", str(baseline))
        assert code == 0
        assert "grandfathered" in output

    def test_no_baseline_is_clean(self):
        # the wall-clock debt was burned down; nothing is grandfathered
        code, output = self.run_lint("--no-baseline")
        assert code == 0
        assert "0 findings" in output

    def test_module_subcommand(self):
        from repro.cli import main as cli_main

        out = io.StringIO()
        code = cli_main(["lint"], out=out)
        assert code == 0
        assert "0 findings" in out.getvalue()


class TestRepoInvariants:
    """The linted tree itself, beyond the committed baseline."""

    def test_baseline_is_empty(self):
        from repro.analysis.lint import DEFAULT_BASELINE

        entries = json.loads(DEFAULT_BASELINE.read_text())
        assert entries == []

    def test_src_lint_matches_baseline_exactly(self):
        from repro.analysis.lint import DEFAULT_BASELINE, DEFAULT_ROOT

        findings = lint_paths([DEFAULT_ROOT])
        remaining = apply_baseline(findings, load_baseline(DEFAULT_BASELINE))
        assert remaining == [], [f.format() for f in remaining]


class TestObsUntracedStageRule:
    def scan(self, tmp_path, body):
        return lint_source(tmp_path, body, name="core/pipeline.py")

    def test_untraced_stage_call_flagged(self, tmp_path):
        findings = self.scan(
            tmp_path,
            """
            def worker(self, stage, item):
                return stage.fn(item)
            """,
        )
        assert rules(findings) == ["obs/untraced-stage"]

    def test_stage_under_span_allowed(self, tmp_path):
        findings = self.scan(
            tmp_path,
            """
            def worker(self, stage, item):
                with self.obs.tracer.span(stage.name):
                    return stage.fn(item)
            """,
        )
        assert findings == []

    def test_span_inside_branch_allowed(self, tmp_path):
        findings = self.scan(
            tmp_path,
            """
            def worker(self, stage, item, traced):
                if traced:
                    with self.obs.tracer.span(stage.name):
                        return stage.fn(item)
                return None
            """,
        )
        assert findings == []

    def test_non_span_with_still_flagged(self, tmp_path):
        findings = self.scan(
            tmp_path,
            """
            def worker(self, stage, item):
                with self.lock:
                    return stage.fn(item)
            """,
        )
        assert rules(findings) == ["obs/untraced-stage"]

    def test_nested_def_scanned_independently(self, tmp_path):
        findings = self.scan(
            tmp_path,
            """
            def outer(self, stage, item):
                with self.obs.tracer.span(stage.name):
                    def escape():
                        return stage.fn(item)
                    return escape()
            """,
        )
        assert rules(findings) == ["obs/untraced-stage"]

    def test_other_files_out_of_scope(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def worker(stage, item):
                return stage.fn(item)
            """,
            name="crawlers/other.py",
        )
        assert findings == []

    def test_suppression_comment(self, tmp_path):
        findings = self.scan(
            tmp_path,
            """
            def worker(self, stage, item):
                return stage.fn(item)  # repro: allow[untraced-stage]
            """,
        )
        assert findings == []
