"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


SMALL = ("--scenarios", "5", "--reports-per-site", "2")


class TestRunAndQuery:
    @pytest.fixture(scope="class")
    def state_dir(self, tmp_path_factory):
        state = tmp_path_factory.mktemp("kgstate")
        code, output = run_cli("run", "--state", str(state), *SMALL)
        assert code == 0, output
        return state

    def test_run_reports_progress(self, state_dir):
        # state fixture already ran; a second run is incremental
        code, output = run_cli("run", "--state", str(state_dir), *SMALL)
        assert code == 0
        assert "crawled 0 reports" in output

    def test_stats_reads_persisted_graph(self, state_dir):
        code, output = run_cli("stats", "--state", str(state_dir), *SMALL)
        assert code == 0
        assert "knowledge graph:" in output
        assert "0 nodes" not in output

    def test_search_persisted_index(self, state_dir):
        code, output = run_cli(
            "search", "--state", str(state_dir), *SMALL, "ransomware"
        )
        assert code == 0
        assert output.strip()

    def test_search_no_results(self, state_dir):
        code, _output = run_cli(
            "search", "--state", str(state_dir), *SMALL, "zzzzzzzz"
        )
        assert code == 1

    def test_cypher(self, state_dir):
        code, output = run_cli(
            "cypher", "--state", str(state_dir), *SMALL,
            "MATCH (n) RETURN count(*) AS c",
        )
        assert code == 0
        assert "c=" in output and "row(s)" in output

    def test_cypher_syntax_error(self, state_dir):
        code, output = run_cli(
            "cypher", "--state", str(state_dir), *SMALL, "FROB (n)"
        )
        assert code == 2
        assert "query error" in output

    def test_fuse(self, state_dir):
        code, output = run_cli("fuse", "--state", str(state_dir), *SMALL)
        assert code == 0
        assert "fused" in output

    def test_export_stix(self, state_dir, tmp_path):
        out_file = tmp_path / "bundle.json"
        code, output = run_cli(
            "export", "--state", str(state_dir), *SMALL, "--out", str(out_file)
        )
        assert code == 0
        bundle = json.loads(out_file.read_text())
        assert bundle["type"] == "bundle"
        assert bundle["objects"]

    def test_hunt(self, state_dir):
        code, output = run_cli(
            "hunt", "--state", str(state_dir), *SMALL, "--attacks", "2",
            "--benign-events", "100",
        )
        assert code == 0
        assert "confirmed incident" in output

    def test_serve_once(self, state_dir):
        code, output = run_cli(
            "serve", "--state", str(state_dir), *SMALL, "--port", "0", "--once"
        )
        assert code == 0
        assert "listening on http" in output


class TestCrashResume:
    """A killed `run` resumes mid-batch with the same --state."""

    VIRTUAL = (*SMALL, "--clock", "virtual")

    def test_crash_exits_3_and_resume_converges(self, tmp_path):
        reference = tmp_path / "reference"
        code, _ = run_cli("run", "--state", str(reference), *self.VIRTUAL)
        assert code == 0
        _, expected_stats = run_cli("stats", "--state", str(reference), *self.VIRTUAL)

        crashed = tmp_path / "crashed"
        code, output = run_cli(
            "run", "--state", str(crashed), *self.VIRTUAL,
            "--crash-at", "commit.after-fsync", "--crash-at-hit", "2",
        )
        assert code == 3
        assert "simulated crash at 'commit.after-fsync'" in output

        code, output = run_cli("run", "--state", str(crashed), *self.VIRTUAL)
        assert code == 0
        assert "state saved" in output
        _, resumed_stats = run_cli("stats", "--state", str(crashed), *self.VIRTUAL)
        assert resumed_stats == expected_stats

    def test_crash_during_checkpoint_keeps_state(self, tmp_path):
        state = tmp_path / "state"
        code, output = run_cli(
            "run", "--state", str(state), *self.VIRTUAL,
            "--crash-at", "checkpoint.torn-manifest",
        )
        assert code == 3
        # every report committed before the checkpoint died; nothing to redo
        code, output = run_cli("run", "--state", str(state), *self.VIRTUAL)
        assert code == 0
        assert "crawled 0 reports" in output


class TestStandalone:
    def test_config_prints_defaults(self):
        code, output = run_cli("config")
        assert code == 0
        assert json.loads(output)["recognizer"] == "gazetteer"

    def test_run_without_state(self):
        code, output = run_cli("run", *SMALL, "--max-articles", "3")
        assert code == 0
        assert "crawled 3 reports" in output

    def test_config_file_respected(self, tmp_path):
        from repro.core.config import SystemConfig

        config_path = tmp_path / "cfg.json"
        SystemConfig(
            scenario_count=4,
            reports_per_site=2,
            sources=["OTX Mirror"],
            connectors=["graph", "search"],
        ).save(config_path)
        code, output = run_cli(
            "run", "--config", str(config_path), *SMALL, "--max-articles", "99"
        )
        assert code == 0
        assert "crawled 2 reports" in output  # one source, two reports

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")
