"""The sharding layer: router placement, store fan-out, scatter-gather.

Covers the placement properties the design leans on (stability, balance,
insertion-order independence -- hypothesis-driven), the per-partition
store semantics (exactly-once markers, crash isolation, disjoint id
ranges), scatter-gather Cypher equivalence against a single-partition
deployment, and the witness/analyzer support for per-partition lock
families.
"""

from __future__ import annotations

import ast as pyast
import json
import random
import sys
from io import StringIO

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import _lock_name_literal
from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.graphdb.cypher.executor import CypherRuntimeError
from repro.graphdb.store import PropertyGraph
from repro.obs import make_obs
from repro.ontology.entities import EntityType
from repro.ontology.intermediate import CTIRecord, Mention
from repro.runtime import clock_from_name
from repro.runtime.locks import (
    LockOrderViolation,
    LockOrderWitness,
    canonical_lock_name,
)
from repro.sharding import (
    ID_STRIDE,
    ShardRouter,
    ShardSet,
    ShardedCrawlState,
    ShardedCypherEngine,
)
from repro.storage.faults import CrashInjector, InjectedCrash

# -- fixtures ---------------------------------------------------------------

ENTITIES = [
    ("agent tesla", EntityType.MALWARE),
    ("zeus panda", EntityType.MALWARE),
    ("vidar stealer", EntityType.MALWARE),
    ("Teardrop", EntityType.MALWARE),
    ("APT29", EntityType.THREAT_ACTOR),
    ("FIN7", EntityType.THREAT_ACTOR),
    ("mimikatz", EntityType.TOOL),
    ("cobalt strike", EntityType.TOOL),
]


def _record(index: int, entity: str | None = None) -> CTIRecord:
    name, etype = ENTITIES[index % len(ENTITIES)]
    if entity is not None:
        name, etype = entity, EntityType.MALWARE
    return CTIRecord(
        report_id=f"rpt-{index:04d}",
        source="UnitSource",
        url=f"https://unit.test/report/{index}",
        title=f"report {index} on {name}",
        mentions=[Mention(name, etype, confidence=0.9)],
    )


def _batch(count: int) -> list[CTIRecord]:
    return [_record(index) for index in range(count)]


# -- router placement properties --------------------------------------------


class TestShardRouter:
    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_single_partition_owns_everything(self):
        router = ShardRouter(1)
        assert {router.partition_for(f"key-{i}") for i in range(50)} == {0}

    @given(
        st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=40),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40)
    def test_placement_stable_across_instances(self, keys, partitions):
        first, second = ShardRouter(partitions), ShardRouter(partitions)
        for key in keys:
            owner = first.partition_for(key)
            assert owner == second.partition_for(key)
            assert 0 <= owner < partitions

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25)
    def test_balanced_within_tolerance(self, partitions, seed):
        rng = random.Random(seed)
        count = 600
        keys = [
            f"Malware\x1fsample-{rng.randrange(10**9)}-{index}"
            for index in range(count)
        ]
        router = ShardRouter(partitions)
        loads = [0] * partitions
        for key in keys:
            loads[router.partition_for(key)] += 1
        expected = count / partitions
        # blake2b placement is uniform; these bounds are > 5 sigma out
        assert max(loads) < expected * 2.0
        assert min(loads) > expected * 0.4

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6),
                 min_size=1, max_size=60, unique=True),
        st.integers(min_value=2, max_value=6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30)
    def test_placement_independent_of_insertion_order(
        self, seeds, partitions, rng
    ):
        records = [_record(seed, entity=f"sample-{seed}") for seed in seeds]
        shuffled = list(records)
        rng.shuffle(shuffled)
        router = ShardRouter(partitions)
        by_id_sorted = {
            r.report_id: router.partition_for_record(r)
            for r in sorted(records, key=lambda r: r.report_id)
        }
        by_id_shuffled = {
            r.report_id: router.partition_for_record(r) for r in shuffled
        }
        assert by_id_sorted == by_id_shuffled

    def test_entity_key_folds_name_case(self):
        router = ShardRouter(4)
        assert router.partition_for_entity(
            "Malware", "Agent Tesla"
        ) == router.partition_for_entity("Malware", "agent tesla")

    def test_anchor_is_smallest_entity_key(self):
        router = ShardRouter(4)
        record = _record(0)
        record.mentions = [
            Mention("zeta", EntityType.MALWARE),
            Mention("alpha", EntityType.MALWARE),
        ]
        assert router.anchor_key(record) == router.entity_key(
            "Malware", "alpha"
        )

    def test_mentionless_record_routes_by_report_id(self):
        router = ShardRouter(4)
        record = _record(3)
        record.mentions = []
        assert "rpt-0003" in router.anchor_key(record)

    def test_group_records_partitions_and_preserves_order(self):
        router = ShardRouter(3)
        records = _batch(24)
        groups = router.group_records(records)
        assert sorted(groups) == [0, 1, 2]
        seen = []
        for index, group in groups.items():
            for record in group:
                assert router.partition_for_record(record) == index
            seen.extend(group)
        assert sorted(r.report_id for r in seen) == [
            r.report_id for r in records
        ]


# -- the store fan-out ------------------------------------------------------


class TestShardSetStore:
    def test_store_is_exactly_once_per_partition(self):
        shards = ShardSet(3)
        records = _batch(16)
        outcome = shards.store(records)
        assert outcome.stored == 16
        assert outcome.skipped == 0
        assert shards.ingested_count == 16
        replay = shards.store(records)
        assert replay.stored == 0
        assert replay.skipped == 16
        assert shards.ingested_count == 16
        assert shards.is_ingested("rpt-0000")
        assert not shards.is_ingested("rpt-9999")
        shards.close()

    def test_records_land_on_their_router_partition(self):
        shards = ShardSet(4)
        records = _batch(20)
        shards.store(records)
        for record in records:
            owner = shards.router.partition_for_record(record)
            for partition in shards.partitions:
                ingested = partition.engine.is_ingested(record.report_id)
                assert ingested == (partition.index == owner)
        shards.close()

    def test_partition_id_ranges_are_disjoint(self):
        shards = ShardSet(3)
        shards.store(_batch(18))
        for partition in shards.partitions:
            low = partition.index * ID_STRIDE
            for node in partition.graph.nodes():
                assert low < node.node_id <= low + ID_STRIDE
        merged = shards.merged_graph()
        total = sum(p.graph.node_count for p in shards.partitions)
        assert merged.node_count == total
        assert merged.edge_count == sum(
            p.graph.edge_count for p in shards.partitions
        )
        shards.close()

    def test_crash_on_one_partition_leaves_others_committed(self, tmp_path):
        faults = CrashInjector("commit.before-append")
        shards = ShardSet(3, root=tmp_path, faults=faults)
        records = _batch(18)
        groups = shards.router.group_records(records)
        assert groups[0], "fixture must route records to partition 0"
        with pytest.raises(InjectedCrash):
            shards.store(records)
        # partition 0 lost its first in-flight commit; the others ran
        assert shards.partitions[0].engine.ingested_count == 0
        for partition in shards.partitions[1:]:
            assert partition.engine.ingested_count == len(
                groups[partition.index]
            )
        # reopening and replaying converges with no duplicates
        recovered = ShardSet(3, root=tmp_path)
        outcome = recovered.store(records)
        assert outcome.stored == len(groups[0])
        assert outcome.skipped == len(records) - len(groups[0])
        assert recovered.ingested_count == len(records)
        recovered.close()

    def test_metrics_carry_partition_labels(self):
        clock = clock_from_name("virtual")
        obs = make_obs(clock)
        shards = ShardSet(2, obs=obs, clock=clock)
        shards.store(_batch(10))
        snapshot = obs.metrics.snapshot()
        stored = snapshot["counters"]["shard.reports_stored"]
        assert set(stored) == {"partition=0", "partition=1"}
        assert sum(stored.values()) == 10
        spans = [
            s for s in obs.tracer.export() if s["name"] == "store.shard"
        ]
        assert {s["attrs"]["partition"] for s in spans} == {0, 1}
        shards.close()

    def test_sharded_crawl_state_routes_and_aggregates(self):
        shards = ShardSet(3)
        state = ShardedCrawlState(shards)
        urls = [f"https://unit.test/page/{i}" for i in range(12)]
        for url in urls:
            assert state.mark_seen(url)
        assert not state.mark_seen(urls[0])
        assert state.seen_count == 12
        assert all(state.is_seen(url) for url in urls)
        state.unmark(urls[0])
        assert not state.is_seen(urls[0])
        assert state.seen_count == 11
        state.record_crawl("UnitSource", 42.0)
        assert state.last_crawl("UnitSource") == 42.0
        assert state.last_crawl("Other") is None
        state.save()
        shards.close()


# -- scatter-gather Cypher --------------------------------------------------


def _values(rows):
    return [row.values for row in rows]


class TestShardedCypher:
    @pytest.fixture()
    def pair(self):
        """The same corpus stored on 1 partition and on 4."""
        single = ShardSet(1)
        sharded = ShardSet(4)
        records = _batch(24)
        single.store(records)
        sharded.store(records)
        one = ShardedCypherEngine([p.cypher for p in single.partitions])
        many = ShardedCypherEngine([p.cypher for p in sharded.partitions])
        yield one, many
        single.close()
        sharded.close()

    def test_ordered_scan_matches_single_partition(self, pair):
        one, many = pair
        query = "MATCH (m:Malware) RETURN m.name ORDER BY m.name"
        assert _values(many.run(query)) == _values(one.run(query))

    def test_order_skip_limit_matches(self, pair):
        one, many = pair
        query = (
            "MATCH (r:AttackReport)-[:MENTIONS]->(m:Malware) "
            "RETURN r.name, m.name ORDER BY r.name SKIP 2 LIMIT 5"
        )
        assert _values(many.run(query)) == _values(one.run(query))

    def test_distinct_merges_across_partitions(self, pair):
        one, many = pair
        query = "MATCH (m:Malware) RETURN DISTINCT m.name ORDER BY m.name"
        assert _values(many.run(query)) == _values(one.run(query))

    def test_global_count_sums_partials(self, pair):
        one, many = pair
        query = "MATCH (m:Malware) RETURN count(m) AS n"
        assert _values(many.run(query)) == _values(one.run(query))

    def test_grouped_count_merges_by_group_key(self, pair):
        one, many = pair
        query = (
            "MATCH (r:AttackReport)-[:MENTIONS]->(m:Malware) "
            "RETURN m.name, count(r) AS reports ORDER BY m.name"
        )
        assert _values(many.run(query)) == _values(one.run(query))

    def test_collect_distinct_dedupes_across_partitions(self, pair):
        one, many = pair
        query = (
            "MATCH (m:Malware) "
            "RETURN collect(DISTINCT m.name) AS names"
        )
        got = _values(many.run(query))[0]["names"]
        want = _values(one.run(query))[0]["names"]
        assert sorted(got) == sorted(want)

    def test_count_distinct_merges_across_partitions(self, pair):
        one, many = pair
        query = "MATCH (m:Malware) RETURN count(DISTINCT m.name) AS n"
        assert _values(many.run(query)) == _values(one.run(query))

    def test_numeric_aggregates_match_single_partition(self, pair):
        one, many = pair
        query = (
            "MATCH (r:AttackReport)-[:MENTIONS]->(m:Malware) "
            "RETURN m.name, count(r) AS n, min(r.name) AS lo, "
            "max(r.name) AS hi ORDER BY m.name"
        )
        assert _values(many.run(query)) == _values(one.run(query))

    def test_avg_merges_from_sum_count_partials(self, pair):
        one, many = pair
        # seed a numeric property spread across partitions (the
        # duplicated 4 exercises cross-partition DISTINCT dedup)
        for engine in (one, many):
            for index, score in enumerate((2, 4, 6, 9, 4)):
                engine.run(
                    f"CREATE (:Malware {{name: 'avg-sample-{index}', "
                    f"merge_key: 'malware::avg-sample-{index}', "
                    f"score: {score}}})",
                    strict=False,
                )
        query = (
            "MATCH (m:Malware) WHERE m.score IS NOT NULL "
            "RETURN avg(m.score) AS a, sum(m.score) AS s, "
            "count(DISTINCT m.score) AS d, avg(DISTINCT m.score) AS ad"
        )
        assert _values(many.run(query)) == _values(one.run(query))
        merged = _values(many.run(query))[0]
        assert merged == {"a": 5.0, "s": 25, "d": 4, "ad": 5.25}

    def test_paginated_streaming_matches_full_run(self, pair):
        one, many = pair
        query = "MATCH (m:Malware) RETURN m.name"
        full = [row.values for row in many.run(query)]
        rows, cont = [], None
        while True:
            page = many.run_paginated(query, page_size=3, continuation=cont)
            assert len(page.rows) <= 3
            rows.extend(row.values for row in page.rows)
            cont = page.continuation
            if cont is None:
                break
        assert rows == full
        assert sorted(map(str, rows)) == sorted(
            str(row.values) for row in one.run(query)
        )

    def test_paginated_blocking_matches_full_run(self, pair):
        _one, many = pair
        query = (
            "MATCH (m:Malware) RETURN m.name AS name ORDER BY name"
        )
        full = [row.values for row in many.run(query)]
        rows, cont = [], None
        while True:
            page = many.run_paginated(query, page_size=2, continuation=cont)
            rows.extend(row.values for row in page.rows)
            cont = page.continuation
            if cont is None:
                break
        assert rows == full

    def test_limit_pushdown_returns_enough_rows(self, pair):
        one, many = pair
        query = "MATCH (m:Malware) RETURN m.name LIMIT 3"
        assert len(many.run(query)) == len(one.run(query)) == 3

    def test_create_routes_to_owning_partition(self):
        shards = ShardSet(3)
        engine = ShardedCypherEngine([p.cypher for p in shards.partitions])
        engine.run(
            "CREATE (:Malware {name: 'routed-sample', merge_key: "
            "'malware::routed-sample'})",
            strict=False,
        )
        owner = shards.router.partition_for_entity("Malware", "routed-sample")
        for partition in shards.partitions:
            count = partition.graph.node_count
            assert count == (1 if partition.index == owner else 0)
        rows = engine.run(
            "MATCH (m:Malware) RETURN m.name", strict=False
        )
        assert _values(rows) == [{"m.name": "routed-sample"}]
        shards.close()

    def test_requires_at_least_one_engine(self):
        with pytest.raises(ValueError):
            ShardedCypherEngine([])


# -- scatter-gather search / fusion / stats ---------------------------------


class TestShardSetReads:
    def test_search_merges_with_canonical_order(self):
        shards = ShardSet(3)
        shards.store(_batch(24))
        hits = shards.search("report", limit=8)
        assert len(hits) == 8
        keys = [(-hit.score, hit.doc_id) for hit in hits]
        assert keys == sorted(keys)
        shards.close()

    def test_stats_aggregates_and_breaks_down(self):
        shards = ShardSet(3)
        shards.store(_batch(24))
        stats = shards.stats()
        assert [p["partition"] for p in stats["partitions"]] == [0, 1, 2]
        assert stats["nodes"] == sum(
            p["nodes"] for p in stats["partitions"]
        )
        assert sum(p["reports_ingested"] for p in stats["partitions"]) == 24
        assert sum(stats["labels"].values()) == stats["nodes"]
        shards.close()

    def test_fusion_scans_every_partition(self):
        shards = ShardSet(2)
        records = _batch(8)
        # alias pairs on both partitions: fusion should fold each pair
        for index, record in enumerate(records):
            record.mentions.append(
                Mention(record.mentions[0].text.upper(), EntityType.MALWARE)
            )
        shards.store(records)
        report = shards.fuse()
        assert report.nodes_before >= report.nodes_after
        assert report.merged_groups == sorted(report.merged_groups)
        shards.close()


# -- the SecurityKG facade --------------------------------------------------


WORKLOAD = dict(
    scenario_count=6,
    reports_per_site=2,
    sources=["ThreatPedia", "MalwareBulletin"],
    clock="virtual",
    seed=7,
)


class TestShardedSecurityKG:
    def test_run_once_with_partitions(self):
        kg = SecurityKG(SystemConfig(partitions=3, **WORKLOAD))
        report = kg.run_once()
        assert report.reports_stored > 0
        stats = kg.stats()
        assert len(stats["partitions"]) == 3
        assert stats["nodes"] == kg.graph.node_count
        assert kg.keyword_search("malware", limit=3)
        rows = kg.cypher("MATCH (m:Malware) RETURN m.name ORDER BY m.name")
        assert rows
        kg.run_fusion()
        kg.close()

    def test_sharded_matches_single_partition_graph(self):
        single = SecurityKG(SystemConfig(partitions=1, **WORKLOAD))
        sharded = SecurityKG(SystemConfig(partitions=3, **WORKLOAD))
        single.run_once()
        sharded.run_once()

        def canonical(graph):
            # Entities mentioned by reports anchored on several
            # partitions legitimately exist as one copy per partition,
            # so compare the *set* of logical nodes and edges.
            def ident(node_id):
                node = graph.node(node_id)
                return (node.label, node.properties.get("name", ""))

            nodes = {ident(node.node_id) for node in graph.nodes()}
            edges = {
                (ident(edge.src), edge.type, ident(edge.dst))
                for edge in graph.edges()
            }
            return nodes, edges

        assert canonical(sharded.graph) == canonical(single.graph)
        single.close()
        sharded.close()

    def test_persistent_sharded_state_reopens(self, tmp_path):
        config = SystemConfig(
            partitions=2, storage_path=str(tmp_path), **WORKLOAD
        )
        kg = SecurityKG(config)
        first = kg.run_once()
        kg.checkpoint()
        kg.close()
        assert (tmp_path / "partition-0").is_dir()
        assert (tmp_path / "partition-1").is_dir()
        reopened = SecurityKG(SystemConfig(
            partitions=2, storage_path=str(tmp_path), **WORKLOAD
        ))
        # everything already crawled and ingested: nothing new
        second = reopened.run_once()
        assert second.reports_stored == 0
        assert reopened.stats()["nodes"] == kg.stats()["nodes"]
        reopened.close()
        assert first.reports_stored > 0


# -- CLI --------------------------------------------------------------------


class TestShardingCLI:
    def test_run_and_by_partition_drilldown(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        out = StringIO()
        code = main(
            [
                "run", "--clock", "virtual", "--partitions", "2",
                "--scenarios", "6", "--reports-per-site", "2",
                "--trace", str(trace),
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        out = StringIO()
        code = main(
            ["stats", "--from-trace", str(trace), "--by-partition"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "partition" in text
        out = StringIO()
        code = main(
            [
                "stats", "--from-trace", str(trace), "--by-partition",
                "--json",
            ],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert set(payload) == {"0", "1"}
        assert all("stored" in entry for entry in payload.values())


# -- lock families: analyzer + witness --------------------------------------


class TestLockFamilies:
    def test_canonical_lock_name(self):
        assert canonical_lock_name("shard.3.stats") == "shard.*.stats"
        assert canonical_lock_name("shard.12.stats") == "shard.*.stats"
        assert canonical_lock_name("storage.engine") == "storage.engine"
        assert canonical_lock_name("obs.metrics") == "obs.metrics"

    def test_analyzer_reads_fstring_lock_names(self):
        call = pyast.parse(
            'named_lock(f"shard.{index}.stats")', mode="eval"
        ).body
        assert _lock_name_literal(call.args[0]) == "shard.*.stats"
        call = pyast.parse('named_lock("a.b")', mode="eval").body
        assert _lock_name_literal(call.args[0]) == "a.b"
        call = pyast.parse("named_lock(name)", mode="eval").body
        assert _lock_name_literal(call.args[0]) is None

    def test_witness_allows_ascending_family_nesting(self):
        witness = LockOrderWitness()
        witness.enable()
        witness.record_acquire("shard.0.stats")
        witness.record_acquire("shard.1.stats")
        witness.record_release("shard.1.stats")
        witness.record_release("shard.0.stats")
        # instances share the canonical family name: no self-edge
        assert witness.observed_edges() == []

    def test_witness_rejects_descending_family_nesting(self):
        witness = LockOrderWitness()
        witness.enable()
        witness.record_acquire("shard.2.stats")
        with pytest.raises(LockOrderViolation, match="ascending"):
            witness.record_acquire("shard.1.stats")

    def test_family_edges_record_canonical_names(self):
        witness = LockOrderWitness()
        witness.enable()
        witness.record_acquire("outer.family")
        witness.record_acquire("shard.4.stats")
        witness.record_release("shard.4.stats")
        witness.record_release("outer.family")
        assert witness.observed_edges() == [
            ("outer.family", "shard.*.stats")
        ]


# -- label / property-key interning -----------------------------------------


class TestInterning:
    def test_labels_and_property_keys_are_interned(self):
        graph = PropertyGraph()
        label = "Mal" + "ware"  # a fresh, non-interned string
        key = "na" + "me"
        node = graph.create_node(label, {key: "sample"})
        assert node.label is sys.intern("Malware")
        assert all(k is sys.intern(k) for k in node.properties)
        other = graph.create_node("Mal" + "ware", {"na" + "me": "second"})
        assert other.label is node.label

    def test_restored_nodes_intern_too(self):
        graph = PropertyGraph()
        graph.restore_node(7, "Thr" + "eatActor", {"na" + "me": "actor"})
        node = graph.node(7)
        assert node.label is sys.intern("ThreatActor")
        assert all(k is sys.intern(k) for k in node.properties)
