"""Unit tests for the property graph store, WAL and transactions."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import GraphDatabase, PropertyGraph, TransactionError


@pytest.fixture
def graph():
    return PropertyGraph()


class TestNodes:
    def test_create_and_get(self, graph):
        node = graph.create_node("Malware", {"name": "emotet"})
        assert graph.node(node.node_id).properties["name"] == "emotet"

    def test_missing_node_raises(self, graph):
        with pytest.raises(KeyError):
            graph.node(999)

    def test_label_index(self, graph):
        graph.create_node("Malware", {"name": "a"})
        graph.create_node("Tool", {"name": "b"})
        assert [n.label for n in graph.nodes("Malware")] == ["Malware"]

    def test_property_index_lookup(self, graph):
        for i in range(50):
            graph.create_node("Malware", {"name": f"m{i}"})
        found = graph.find_nodes("Malware", name="m7")
        assert len(found) == 1

    def test_find_on_unindexed_property(self, graph):
        graph.create_node("Malware", {"name": "a", "severity": "high"})
        graph.create_node("Malware", {"name": "b", "severity": "low"})
        assert len(graph.find_nodes("Malware", severity="high")) == 1

    def test_update_reindexes(self, graph):
        node = graph.create_node("Malware", {"name": "old"})
        graph.set_node_properties(node.node_id, {"name": "new"})
        assert graph.find_node("Malware", name="old") is None
        assert graph.find_node("Malware", name="new") is not None

    def test_delete_node_removes_edges(self, graph):
        a = graph.create_node("A")
        b = graph.create_node("B")
        graph.create_edge(a.node_id, "R", b.node_id)
        graph.delete_node(b.node_id)
        assert graph.edge_count == 0
        assert graph.out_edges(a.node_id) == []

    def test_restore_node_preserves_id_and_advances_counter(self, graph):
        graph.restore_node(10, "X", {"name": "n"})
        fresh = graph.create_node("Y")
        assert fresh.node_id > 10
        with pytest.raises(KeyError):
            graph.restore_node(10, "X", {})


class TestEdges:
    def test_create_edge_requires_endpoints(self, graph):
        a = graph.create_node("A")
        with pytest.raises(KeyError):
            graph.create_edge(a.node_id, "R", 42)

    def test_adjacency(self, graph):
        a = graph.create_node("A")
        b = graph.create_node("B")
        c = graph.create_node("C")
        graph.create_edge(a.node_id, "R", b.node_id)
        graph.create_edge(c.node_id, "S", a.node_id)
        assert [e.type for e in graph.out_edges(a.node_id)] == ["R"]
        assert [e.type for e in graph.in_edges(a.node_id)] == ["S"]
        names = {n.label for n in graph.neighbors(a.node_id)}
        assert names == {"B", "C"}

    def test_neighbors_filtered_by_type_and_direction(self, graph):
        a = graph.create_node("A")
        b = graph.create_node("B")
        graph.create_edge(a.node_id, "R", b.node_id)
        assert graph.neighbors(a.node_id, edge_type="R", direction="out")
        assert not graph.neighbors(a.node_id, edge_type="R", direction="in")
        assert not graph.neighbors(a.node_id, edge_type="X", direction="out")

    def test_counts(self, graph):
        a = graph.create_node("A")
        b = graph.create_node("B")
        graph.create_edge(a.node_id, "R", b.node_id)
        graph.create_edge(a.node_id, "R", b.node_id)
        assert graph.node_count == 2
        assert graph.edge_count == 2
        assert graph.label_counts() == {"A": 1, "B": 1}
        assert graph.edge_type_counts() == {"R": 2}

    def test_degree(self, graph):
        a = graph.create_node("A")
        b = graph.create_node("B")
        graph.create_edge(a.node_id, "R", b.node_id)
        graph.create_edge(b.node_id, "R", a.node_id)
        assert graph.degree(a.node_id) == 2


class TestTransactions:
    def test_commit_applies_batch(self):
        db = GraphDatabase()
        with db.begin() as tx:
            m = tx.create_node("Malware", {"name": "emotet"})
            f = tx.create_node("FileName", {"name": "x.exe"})
            tx.create_edge(m, "DROPS", f)
        assert db.graph.node_count == 2
        assert db.graph.edge_count == 1

    def test_rollback_discards(self):
        db = GraphDatabase()
        tx = db.begin()
        tx.create_node("Malware", {"name": "emotet"})
        tx.rollback()
        assert db.graph.node_count == 0

    def test_exception_rolls_back(self):
        db = GraphDatabase()
        with pytest.raises(RuntimeError):
            with db.begin() as tx:
                tx.create_node("Malware", {"name": "emotet"})
                raise RuntimeError("boom")
        assert db.graph.node_count == 0

    def test_double_commit_rejected(self):
        db = GraphDatabase()
        tx = db.begin()
        tx.create_node("A")
        tx.commit()
        with pytest.raises(TransactionError):
            tx.commit()

    def test_placeholder_mapping(self):
        db = GraphDatabase()
        tx = db.begin()
        ref = tx.create_node("A", {"name": "x"})
        assert ref < 0
        id_map = tx.commit()
        assert db.graph.node(id_map[ref]).properties["name"] == "x"

    def test_set_properties_in_transaction(self):
        db = GraphDatabase()
        node = db.create_node("A", {"name": "x"})
        with db.begin() as tx:
            tx.set_node_properties(node.node_id, {"seen": 2})
        assert db.graph.node(node.node_id).properties["seen"] == 2


class TestDurability:
    def test_wal_replay_after_reopen(self, tmp_path):
        path = tmp_path / "db"
        with GraphDatabase(path) as db:
            m = db.create_node("Malware", {"name": "emotet"})
            f = db.create_node("FileName", {"name": "x.exe"})
            db.create_edge(m.node_id, "DROPS", f.node_id)
        with GraphDatabase(path) as reopened:
            assert reopened.graph.node_count == 2
            assert reopened.graph.edge_count == 1
            assert reopened.graph.find_node("Malware", name="emotet")

    def test_snapshot_compacts_wal(self, tmp_path):
        path = tmp_path / "db"
        with GraphDatabase(path) as db:
            for i in range(10):
                db.create_node("N", {"name": f"n{i}"})
            db.snapshot()
            # compaction starts a fresh (empty) journal generation
            assert db.engine.journal_path.read_text() == ""
            db.create_node("N", {"name": "post-snapshot"})
        with GraphDatabase(path) as reopened:
            assert reopened.graph.node_count == 11
            assert reopened.graph.find_node("N", name="post-snapshot")

    def test_edges_after_snapshot_reference_stable_ids(self, tmp_path):
        path = tmp_path / "db"
        with GraphDatabase(path) as db:
            a = db.create_node("A", {"name": "a"})
            b = db.create_node("B", {"name": "b"})
            db.snapshot()
            db.create_edge(a.node_id, "R", b.node_id)
        with GraphDatabase(path) as reopened:
            assert reopened.graph.edge_count == 1

    def test_torn_wal_tail_recovered(self, tmp_path):
        path = tmp_path / "db"
        with GraphDatabase(path) as db:
            db.create_node("N", {"name": "a"})
            db.create_node("N", {"name": "b"})
            journal = db.engine.journal_path
        # simulate a crash mid-append: half a JSON record at the tail
        with journal.open("a") as handle:
            handle.write('{"seq": 3, "ops": {"graph": [[{"op": "create_no')
        with GraphDatabase(path) as reopened:
            assert reopened.graph.node_count == 2
            # the torn tail was truncated; new writes land cleanly
            reopened.create_node("N", {"name": "c"})
        with GraphDatabase(path) as again:
            assert again.graph.node_count == 3

    def test_concurrent_writers_consistent(self, tmp_path):
        db = GraphDatabase(tmp_path / "db")

        def writer(k):
            for i in range(25):
                with db.begin() as tx:
                    tx.create_node("N", {"name": f"{k}-{i}"})

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.graph.node_count == 100
        db.close()
        with GraphDatabase(tmp_path / "db") as reopened:
            assert reopened.graph.node_count == 100


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B", "C"]),
                st.text(min_size=1, max_size=8),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_label_counts_match_inserts(self, inserts):
        graph = PropertyGraph()
        expected: dict[str, int] = {}
        for label, name in inserts:
            graph.create_node(label, {"name": name})
            expected[label] = expected.get(label, 0) + 1
        assert graph.label_counts() == expected
        assert graph.node_count == len(inserts)
