"""The profiling layer: self-time attribution, flamegraph export,
Cypher PROFILE, and the artefact-determinism goldens.

Three groups of guarantees:

* the pure functions in ``repro.obs.profile`` -- self time is total
  minus direct children (clamped for cross-thread overlap), self times
  partition the tree's total (hypothesis-checked on random
  non-overlapping trees), and the collapsed-stack export is canonical;
* the CLI/UI surfaces -- ``repro profile`` emits byte-identical folded
  files across two seeded virtual-clock runs, ``stats --from-trace``
  grew the ``self_s`` column, and ``GET /profile`` serves the live
  aggregation;
* Cypher ``PROFILE`` -- profiled queries return exactly the rows of
  their unprofiled execution (1 and 4 partitions), the annotated tree
  renders per-operator counters, and the rejection surfaces (PROFILE
  CREATE, EXPLAIN PROFILE, background tasks) hold.
"""

import json
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.graphdb import (
    CypherEngine,
    CypherRuntimeError,
    CypherSyntaxError,
    PropertyGraph,
)
from repro.obs import make_obs
from repro.obs.profile import (
    aggregate,
    annotate,
    collapsed_stacks,
    hotspots,
    profile_dict,
    render_folded,
    render_profile,
    unit_costs,
    write_folded,
)
from repro.ontology.entities import EntityType
from repro.ontology.intermediate import CTIRecord, Mention
from repro.runtime import clock_from_name
from repro.sharding import ShardSet, ShardedCypherEngine
from repro.ui.server import ExplorerAPI


def span(id, parent, name, start, end, **attrs):
    return {
        "id": id, "parent": parent, "name": name,
        "start": start, "end": end, "attrs": attrs,
    }


#: run(0..10) -> crawl(1..8) -> fetch(2..4), fetch(5..7)
TREE = [
    span(1, None, "run", 0.0, 10.0),
    span(2, 1, "crawl", 1.0, 8.0),
    span(3, 2, "crawl.fetch", 2.0, 4.0),
    span(4, 2, "crawl.fetch", 5.0, 7.0),
]


class TestSelfTime:
    def test_self_is_total_minus_children(self):
        by_id = {s["id"]: s for s in annotate(TREE)}
        assert by_id[1]["total_s"] == 10.0
        assert by_id[1]["self_s"] == 3.0  # 10 - crawl's 7
        assert by_id[2]["self_s"] == 3.0  # 7 - two 2s fetches
        assert by_id[3]["self_s"] == 2.0
        assert by_id[4]["path"] == "run;crawl;crawl.fetch"

    def test_overlapping_children_clamp_to_zero(self):
        # children on worker threads can overlap their parent's window
        spans = [
            span(1, None, "crawl", 0.0, 2.0),
            span(2, 1, "crawl.fetch", 0.0, 2.0),
            span(3, 1, "crawl.fetch", 0.0, 2.0),
        ]
        by_id = {s["id"]: s for s in annotate(spans)}
        assert by_id[1]["self_s"] == 0.0
        assert by_id[2]["self_s"] == 2.0

    def test_orphan_parent_treated_as_root(self):
        spans = [span(7, 99, "late", 0.0, 1.0)]
        record = annotate(spans)[0]
        assert record["path"] == "late"
        assert record["self_s"] == 1.0

    def test_aggregate_and_hotspots(self):
        table = aggregate(TREE)
        assert table["crawl.fetch"] == {
            "count": 2, "total_s": 4.0, "self_s": 4.0, "max_self_s": 2.0,
        }
        ranked = hotspots(TREE, top=2)
        assert [entry["name"] for entry in ranked] == ["crawl.fetch", "crawl"]
        assert ranked[0]["self_pct"] == pytest.approx(40.0)

    def test_hotspot_ties_break_by_name(self):
        spans = [
            span(1, None, "beta", 0.0, 1.0),
            span(2, None, "alpha", 2.0, 3.0),
        ]
        assert [e["name"] for e in hotspots(spans)] == ["alpha", "beta"]


class TestUnitCosts:
    def test_per_report_and_per_unit(self):
        spans = [
            span(1, None, "extract.ner", 0.0, 2.0,
                 report="rpt-1", tokens=40, mentions=4),
            span(2, None, "extract.ner", 2.0, 4.0,
                 report="rpt-2", tokens=60, mentions=6),
        ]
        costs = unit_costs(spans)["extract.ner"]
        assert costs["reports"] == 2
        assert costs["self_per_report_s"] == pytest.approx(2.0)
        assert costs["units"] == {"mentions": 10, "tokens": 100}
        assert costs["self_per_unit_s"]["tokens"] == pytest.approx(0.04)
        assert costs["self_per_unit_s"]["mentions"] == pytest.approx(0.4)

    def test_no_reports_yields_null_cost(self):
        costs = unit_costs([span(1, None, "crawl", 0.0, 1.0)])["crawl"]
        assert costs["reports"] == 0
        assert costs["self_per_report_s"] is None
        assert costs["units"] == {}


class TestCollapsedStacks:
    def test_integer_microseconds_per_path(self):
        folded = collapsed_stacks(TREE)
        assert folded == {
            "run": 3_000_000,
            "run;crawl": 3_000_000,
            "run;crawl;crawl.fetch": 4_000_000,
        }

    def test_render_is_sorted_lines(self):
        text = render_folded(TREE)
        assert text == (
            "run 3000000\n"
            "run;crawl 3000000\n"
            "run;crawl;crawl.fetch 4000000\n"
        )

    def test_write_folded_is_atomic_file(self, tmp_path):
        out = tmp_path / "flame.folded"
        write_folded(out, TREE)
        assert out.read_text() == render_folded(TREE)

    def test_render_profile_empty(self):
        assert render_profile([]) == "trace is empty"


@st.composite
def span_trees(draw):
    """Random span forests with nested, non-overlapping children."""
    spans = []
    next_id = [1]

    def build(parent, lo, hi, depth):
        sid = next_id[0]
        next_id[0] += 1
        name = draw(st.sampled_from(["a", "b", "c", "d"]))
        spans.append(span(sid, parent, name, lo, hi))
        if depth >= 3 or hi - lo <= 0.0:
            return
        count = draw(st.integers(min_value=0, max_value=3))
        if not count:
            return
        cuts = sorted(
            draw(
                st.lists(
                    st.floats(
                        min_value=lo, max_value=hi,
                        allow_nan=False, allow_infinity=False,
                    ),
                    min_size=2 * count, max_size=2 * count,
                )
            )
        )
        for k in range(count):
            build(sid, cuts[2 * k], cuts[2 * k + 1], depth + 1)

    roots = draw(st.integers(min_value=1, max_value=3))
    cursor = 0.0
    for _ in range(roots):
        width = draw(st.floats(min_value=0.0, max_value=100.0))
        build(None, cursor, cursor + width, 0)
        cursor += width + 1.0
    return spans


class TestSelfTimePartition:
    @settings(max_examples=60, deadline=None)
    @given(span_trees())
    def test_self_times_sum_to_root_totals(self, spans):
        annotated = annotate(spans)
        total_self = sum(s["self_s"] for s in annotated)
        root_total = sum(
            s["total_s"] for s in annotated if s["parent"] is None
        )
        assert total_self == pytest.approx(root_total, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(span_trees())
    def test_folded_is_deterministic_and_nonnegative(self, spans):
        text = render_folded(spans)
        assert text == render_folded(list(spans))
        for line in text.strip().splitlines():
            assert int(line.rsplit(" ", 1)[1]) >= 0


# -- CLI goldens ------------------------------------------------------------


def run_cli(*argv):
    import io

    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


SMALL = ("--scenarios", "4", "--reports-per-site", "2", "--clock", "virtual")


class TestProfileCli:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("prof") / "trace.jsonl"
        code, output = run_cli("run", *SMALL, "--trace", str(path))
        assert code == 0, output
        return path

    def test_folded_golden_across_seeded_runs(self, tmp_path, trace_file):
        second_trace = tmp_path / "second.jsonl"
        code, _ = run_cli("run", *SMALL, "--trace", str(second_trace))
        assert code == 0
        first = tmp_path / "first.folded"
        second = tmp_path / "second.folded"
        code, output = run_cli(
            "profile", "--from-trace", str(trace_file), "--flame", str(first)
        )
        assert code == 0
        assert "wrote collapsed stacks" in output
        code, _ = run_cli(
            "profile", "--from-trace", str(second_trace),
            "--flame", str(second),
        )
        assert code == 0
        assert first.read_bytes() == second.read_bytes()
        assert first.stat().st_size > 0
        for line in first.read_text().splitlines():
            assert re.fullmatch(r"[^ ]+ \d+", line), line

    def test_table_output(self, trace_file):
        code, output = run_cli("profile", "--from-trace", str(trace_file))
        assert code == 0
        assert "total self time" in output
        assert "self_s" in output and "self%" in output

    def test_json_output(self, trace_file):
        code, output = run_cli(
            "profile", "--from-trace", str(trace_file), "--json", "--top", "3"
        )
        assert code == 0
        payload = json.loads(output)
        assert set(payload) == {"spans", "names", "unit_costs", "hotspots"}
        assert len(payload["hotspots"]) == 3
        assert payload["unit_costs"]["extract.ner"]["units"]["tokens"] > 0

    def test_stats_gained_self_s_column(self, trace_file):
        code, output = run_cli("stats", "--from-trace", str(trace_file))
        assert code == 0
        header = next(
            line for line in output.splitlines() if "total_s" in line
        )
        assert "self_s" in header


# -- Cypher PROFILE ---------------------------------------------------------


def demo_graph() -> PropertyGraph:
    graph = PropertyGraph()
    wannacry = graph.create_node("Malware", {"name": "wannacry"})
    emotet = graph.create_node("Malware", {"name": "emotet"})
    lazarus = graph.create_node("ThreatActor", {"name": "lazarus group"})
    graph.create_edge(wannacry.node_id, "ATTRIBUTED_TO", lazarus.node_id)
    graph.create_edge(emotet.node_id, "ATTRIBUTED_TO", lazarus.node_id)
    return graph


class TestCypherProfile:
    @pytest.fixture()
    def engine(self):
        return CypherEngine(demo_graph())

    def test_profiled_rows_identical(self, engine):
        query = "MATCH (m:Malware) RETURN m.name ORDER BY m.name"
        assert engine.run(f"PROFILE {query}") == engine.run(query)

    def test_profile_returns_annotated_tree(self, engine):
        prof = engine.profile(
            "MATCH (m:Malware) RETURN m.name ORDER BY m.name"
        )
        assert [row["m.name"] for row in prof.rows] == ["emotet", "wannacry"]
        operators = [op["operator"] for op in prof.operators]
        assert operators[-1] == "Init"
        scan = next(
            op for op in prof.operators if "Scan" in op["operator"]
        )
        assert scan["rows"] == 2
        assert scan["calls"] >= scan["rows"]
        text = prof.lines()
        assert "rows=" in text[0] and "self=" in text[0]
        # child operators indent below their parent
        assert text[1].startswith("  ")

    def test_deterministic_under_virtual_clock(self):
        def build():
            clock = clock_from_name("virtual")
            engine = CypherEngine(
                demo_graph(), obs=make_obs(clock), clock=clock
            )
            return engine.profile(
                "MATCH (m:Malware) RETURN m.name", step_cost=1e-6
            )

        first, second = build(), build()
        assert first.to_dict() == second.to_dict()
        assert any(op["cumulative_s"] > 0 for op in first.operators)

    def test_profile_span_and_counter(self):
        obs = make_obs(clock_from_name("virtual"))
        engine = CypherEngine(demo_graph(), obs=obs)
        engine.run("PROFILE MATCH (m:Malware) RETURN m.name")
        names = [s["name"] for s in obs.tracer.export()]
        assert "cypher.profile" in names
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cypher.profiled"][""] == 1

    def test_explain_profile_rejected(self, engine):
        with pytest.raises(CypherSyntaxError, match="cannot be combined"):
            engine.run("EXPLAIN PROFILE MATCH (m:Malware) RETURN m")

    def test_profile_create_rejected(self, engine):
        with pytest.raises(
            (CypherSyntaxError, CypherRuntimeError), match="MATCH"
        ):
            engine.run('PROFILE CREATE (m:Malware {name: "x"})')

    def test_task_rejects_profile(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.task("PROFILE MATCH (m:Malware) RETURN m.name")

    def test_paginated_profile_returns_full_page(self, engine):
        page = engine.run_paginated(
            "PROFILE MATCH (m:Malware) RETURN m.name ORDER BY m.name",
            page_size=1,
        )
        assert len(page.rows) == 2
        assert page.continuation is None


def shard_records(count: int) -> list[CTIRecord]:
    names = [
        ("agent tesla", EntityType.MALWARE),
        ("zeus panda", EntityType.MALWARE),
        ("APT29", EntityType.THREAT_ACTOR),
        ("mimikatz", EntityType.TOOL),
    ]
    out = []
    for index in range(count):
        name, etype = names[index % len(names)]
        out.append(
            CTIRecord(
                report_id=f"rpt-{index:04d}",
                source="UnitSource",
                url=f"https://unit.test/report/{index}",
                title=f"report {index} on {name}",
                mentions=[Mention(name, etype, confidence=0.9)],
            )
        )
    return out


class TestShardedProfile:
    @pytest.mark.parametrize("partitions", [1, 4])
    def test_rows_identical_across_partition_counts(self, partitions):
        shards = ShardSet(partitions)
        try:
            shards.store(shard_records(16))
            engine = ShardedCypherEngine(
                [p.cypher for p in shards.partitions]
            )
            query = "MATCH (m:Malware) RETURN m.name ORDER BY m.name"
            plain = engine.run(query)
            assert engine.run(f"PROFILE {query}") == plain
            assert engine.profile(query).rows == plain
        finally:
            shards.close()

    def test_gather_root_and_partition_subtrees(self):
        shards = ShardSet(3)
        try:
            shards.store(shard_records(12))
            engine = ShardedCypherEngine(
                [p.cypher for p in shards.partitions]
            )
            prof = engine.profile("MATCH (m:Malware) RETURN m.name")
            assert prof.operators[0]["operator"] == "Gather"
            assert prof.operators[0]["detail"] == "3 partitions"
            assert set(prof.partitions) == {"0", "1", "2"}
            gathered = sum(
                ops[0]["rows"] for ops in prof.partitions.values()
            )
            assert gathered == len(prof.rows)
            text = prof.lines()
            assert any(line == "partition 0:" for line in text)
        finally:
            shards.close()


# -- the live UI surface ----------------------------------------------------


class TestProfileEndpoint:
    @pytest.fixture(scope="class")
    def api(self):
        clock = clock_from_name("virtual")
        obs = make_obs(clock)
        kg = SecurityKG(
            SystemConfig(
                scenario_count=3, reports_per_site=1, clock="virtual"
            ),
            clock=clock,
            obs=obs,
        )
        kg.run_once()
        return ExplorerAPI(kg)

    def test_get_profile(self, api):
        status, payload, _headers = api.handle_full("GET", "/profile")
        assert status == 200
        assert set(payload) == {"spans", "names", "unit_costs", "hotspots"}
        assert payload["spans"] > 0
        counters = api.system.obs.metrics.snapshot()["counters"]
        assert counters["profile.exports"]["format=json"] >= 1

    def test_api_cypher_profile(self, api):
        status, payload, _headers = api.handle_full(
            "POST",
            "/api/cypher",
            {"query": "PROFILE MATCH (m:Malware) RETURN m.name"},
        )
        assert status == 200
        assert set(payload) == {"rows", "profile"}
        assert payload["profile"]["operators"]
