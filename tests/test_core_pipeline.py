"""Unit tests for the parallel pipeline engine."""

import json
import threading
import time

import pytest

from repro.core.pipeline import Codec, Pipeline, Stage


class TestBasics:
    def test_single_stage_identity(self):
        result = Pipeline([Stage("id", lambda x: x)]).run([1, 2, 3])
        assert sorted(result.outputs) == [1, 2, 3]

    def test_chained_stages(self):
        result = Pipeline(
            [Stage("inc", lambda x: x + 1), Stage("double", lambda x: x * 2)]
        ).run([1, 2, 3])
        assert sorted(result.outputs) == [4, 6, 8]

    def test_filtering_stage(self):
        result = Pipeline(
            [Stage("evens", lambda x: x if x % 2 == 0 else None)]
        ).run(list(range(10)))
        assert sorted(result.outputs) == [0, 2, 4, 6, 8]
        assert result.stages[0].filtered == 5
        assert result.stages[0].processed == 5

    def test_empty_input(self):
        result = Pipeline([Stage("id", lambda x: x)]).run([])
        assert result.outputs == []

    def test_no_stages_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_result_throughput(self):
        result = Pipeline([Stage("id", lambda x: x)]).run([1] * 10)
        assert result.throughput > 0


class TestErrorIsolation:
    def test_stage_exception_drops_item_only(self):
        def boom(x):
            if x == 2:
                raise RuntimeError("bad item")
            return x

        result = Pipeline([Stage("boom", boom, workers=2)]).run([1, 2, 3])
        assert sorted(result.outputs) == [1, 3]
        assert result.stages[0].errors == 1
        assert result.errors == [("boom", "RuntimeError: bad item")]


class TestParallelism:
    def test_workers_speed_up_io_bound_stage(self):
        def slow(x):
            time.sleep(0.004)
            return x

        items = list(range(32))
        serial = Pipeline([Stage("slow", slow, workers=1)]).run(items)
        parallel = Pipeline([Stage("slow", slow, workers=8)]).run(items)
        assert sorted(parallel.outputs) == sorted(serial.outputs)
        assert parallel.elapsed < serial.elapsed / 2

    def test_all_items_processed_with_many_workers(self):
        result = Pipeline(
            [
                Stage("a", lambda x: x + 1, workers=4),
                Stage("b", lambda x: x * 2, workers=4),
                Stage("c", lambda x: x - 1, workers=4),
            ]
        ).run(list(range(200)))
        assert sorted(result.outputs) == [(x + 1) * 2 - 1 for x in range(200)]

    def test_thread_safety_of_stats(self):
        counter = []
        lock = threading.Lock()

        def count(x):
            with lock:
                counter.append(x)
            return x

        result = Pipeline([Stage("c", count, workers=8)]).run(list(range(500)))
        assert len(counter) == 500
        assert result.stages[0].processed == 500


class TestSerializationBoundaries:
    def test_codec_round_trip(self):
        codec = Codec(encode=json.dumps, decode=json.loads)
        result = Pipeline(
            [
                Stage("wrap", lambda x: {"v": x}, codec=codec),
                Stage("unwrap", lambda d: d["v"] + 1),
            ]
        ).run([1, 2, 3])
        assert sorted(result.outputs) == [2, 3, 4]

    def test_final_stage_codec_decoded_in_outputs(self):
        codec = Codec(encode=json.dumps, decode=json.loads)
        result = Pipeline(
            [Stage("wrap", lambda x: {"v": x}, codec=codec)]
        ).run([7])
        assert result.outputs == [{"v": 7}]

    def test_codec_failures_are_stage_errors(self):
        codec = Codec(encode=json.dumps, decode=json.loads)
        result = Pipeline(
            [
                Stage("bad", lambda x: {"v": object()}, codec=codec),
            ]
        ).run([1])
        assert result.outputs == []
        assert result.stages[0].errors == 1
