"""The paper's demonstration outline (section 3), end to end.

Reproduces the three scenarios the SIGMOD demo walks through:

1. keyword search for a ransomware, with detailed display, node
   expansion/collapse, dragging and the back button;
2. keyword search for a threat actor: which techniques it uses and
   which other actors share them;
3. a Cypher query returning the same node as scenario 1.

Run:  python examples/demo_walkthrough.py
"""

from repro import SecurityKG, SystemConfig
from repro.apps import ThreatSearchApp
from repro.ui import GraphExplorer, ViewConfig, save_svg


def main() -> None:
    kg = SecurityKG(
        SystemConfig(scenario_count=15, reports_per_site=5)
    )
    kg.run_once()
    kg.run_fusion()
    app = ThreatSearchApp(kg)
    explorer = GraphExplorer(kg.graph, ViewConfig(max_nodes=40, max_neighbors=10))

    # pick the corpus's busiest malware and actor (the demo uses
    # wannacry and cozyduke; the simulated world has its own names)
    malware = max(kg.graph.nodes("Malware"), key=lambda n: kg.graph.degree(n.node_id))
    actor = max(
        kg.graph.nodes("ThreatActor"), key=lambda n: kg.graph.degree(n.node_id)
    )
    malware_name = malware.properties["name"]
    actor_name = actor.properties["name"]

    print(f"=== Scenario 1: keyword search for {malware_name!r} ===")
    investigation = app.investigate(malware_name)
    print(investigation.summary())

    print("\n-- interactive exploration --")
    explorer.show([investigation.focus.node_id])
    spawned = explorer.expand(investigation.focus.node_id)
    print(f"double-click: spawned {len(spawned)} neighbours")
    view = explorer.snapshot()
    print(f"view now shows {len(view['nodes'])} nodes / {len(view['edges'])} edges")

    svg_path = save_svg(view, "demo_view.svg")
    print(f"rendered the canvas to {svg_path} (the paper's Figure 3, offline)")

    some_node = view["nodes"][1]["id"]
    explorer.drag(some_node, 50.0, 50.0)
    print(f"dragged node {some_node}; it is pinned:",
          any(n["pinned"] for n in explorer.snapshot()["nodes"]))

    explorer.toggle(investigation.focus.node_id)  # collapse
    print(f"double-click again: view back to "
          f"{len(explorer.snapshot()['nodes'])} node(s)")
    explorer.back()
    print(f"back button: view restored to "
          f"{len(explorer.snapshot()['nodes'])} nodes")

    print(f"\n=== Scenario 2: keyword search for actor {actor_name!r} ===")
    techniques = app.techniques_of(actor_name)
    print(f"techniques used by {actor_name}: {', '.join(techniques) or '(none)'}")
    sharing = app.actors_sharing_techniques(actor_name)
    if sharing:
        for other, shared in sharing:
            print(f"  {other} shares {shared} technique(s)")
    else:
        print("  no other actor shares these techniques in this corpus")

    print("\n=== Scenario 3: Cypher query search ===")
    query = f'match (n) where n.name = "{malware_name}" return n'
    print(f"query: {query}")
    rows = kg.cypher(query)
    node = rows[0]["n"]
    same = node.node_id == investigation.focus.node_id
    print(f"returned node {node.node_id} ({node.properties['name']!r}); "
          f"same node as scenario 1: {same}")

    print("\nother queries:")
    for cypher in (
        "MATCH (a:ThreatActor)-[:USES]->(t:Technique) "
        "RETURN a.name, count(t) AS techniques ORDER BY techniques DESC LIMIT 3",
        "MATCH (m:Malware)-[:EXPLOITS]->(v:Vulnerability) "
        "RETURN m.name, v.name LIMIT 3",
    ):
        print(f"  {cypher}")
        for row in kg.cypher(cypher):
            print(f"    {dict(row.values)}")


if __name__ == "__main__":
    main()
