"""Train the CRF extractor with data programming and evaluate it.

Reproduces the paper's extraction methodology end to end: synthesize
training annotations with labeling functions over curated entity lists
(no manual labels), train the linear-chain CRF with IOC protection and
lemma/POS/embedding features, then measure F1 on held-out reports that
contain entity names absent from every curated list -- against the
naive regex and gazetteer baselines the paper claims to beat.

Run:  python examples/train_extractor.py          (about a minute)
"""

import random
import time

from repro.nlp import (
    EntityRecognizer,
    GazetteerRecognizer,
    RegexRecognizer,
    evaluate_entities,
    evaluate_relations,
)
from repro.nlp.relation import RelationExtractor
from repro.nlp.tokenize import tokenize_sentences
from repro.websim.scenario import generate_report_content, make_scenarios


def build_texts(scenarios, variants=3, tag=""):
    texts = []
    for scenario in scenarios:
        for k in range(variants):
            content = generate_report_content(
                scenario,
                random.Random(f"{tag}{scenario.scenario_id}-{k}"),
                sentence_count=8,
            )
            texts.append(" ".join(gs.text for gs in content.truth.sentences))
    return texts


def main() -> None:
    # training corpus: known-name scenarios (full gazetteer coverage)
    train_texts = build_texts(make_scenarios(40, seed=11, known_only=True))
    # test corpus: full name banks, ~25% of names unseen by any list
    test_scenarios = make_scenarios(15, seed=99)
    test_contents = [
        generate_report_content(
            s, random.Random(f"test-{s.scenario_id}"), sentence_count=8
        )
        for s in test_scenarios
    ]

    print(f"training CRF on {len(train_texts)} reports "
          "(annotations synthesized by data programming)...")
    started = time.time()
    ner = EntityRecognizer.train(train_texts, max_iterations=80)
    print(f"trained in {time.time() - started:.1f}s")

    print("\n== entity recognition F1 on held-out reports ==")
    for name, recognizer in (
        ("CRF (this work)", ner),
        ("gazetteer baseline", GazetteerRecognizer()),
        ("regex baseline", RegexRecognizer()),
    ):
        predicted, gold = [], []
        for content in test_contents:
            text = " ".join(gs.text for gs in content.truth.sentences)
            _sents, mentions = recognizer.extract(text)
            predicted += [(m.text, m.type) for m in mentions]
            gold += [
                (m.text, m.type)
                for gs in content.truth.sentences
                for m in gs.mentions
            ]
        evaluation = evaluate_entities(predicted, gold)
        print(
            f"  {name:<22} micro-F1 {evaluation.micro.f1:.3f} "
            f"(P {evaluation.micro.precision:.3f} / R {evaluation.micro.recall:.3f})"
        )

    print("\n== relation extraction F1 (dependency-based, unsupervised) ==")
    extractor = RelationExtractor()
    predicted, gold = [], []
    for content in test_contents:
        for gs in content.truth.sentences:
            sentences = tokenize_sentences(gs.text)
            if not sentences:
                continue
            _s, mentions = ner.extract(gs.text)
            relations = extractor.extract_with_mentions(
                sentences[0].tokens, mentions, 0
            )
            predicted += [(r.head_text, r.verb, r.tail_text) for r in relations]
            gold += [(r.head_text, r.verb, r.tail_text) for r in gs.relations]
    prf = evaluate_relations(predicted, gold)
    print(f"  P {prf.precision:.3f} / R {prf.recall:.3f} / F1 {prf.f1:.3f}")
    print("\n(the paper reports > 92% F1 for its extractors)")

    print("\n== example extraction on an unseen-name sentence ==")
    sentence = ("Once executed, zephyrlock drops a copy of itself as "
                r"C:\Windows\Temp\zl.dll and connects to 45.83.20.11.")
    print(f"  {sentence}")
    _sents, mentions = ner.extract(sentence)
    for mention in mentions:
        print(f"    {mention.type.value:<10} {mention.text!r}  "
              f"({mention.method}, conf {mention.confidence:.2f})")


if __name__ == "__main__":
    main()
