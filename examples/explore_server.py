"""Serve the knowledge graph over the JSON API and drive it as a client.

Starts the explorer HTTP server (the endpoint a React canvas client
would consume) and exercises every interaction over real HTTP:
search-and-focus, expansion, dragging, collapse, back, random
subgraph, Cypher.

Run:  python examples/explore_server.py
"""

import json
import urllib.request

from repro import SecurityKG, SystemConfig
from repro.ui import ExplorerAPI, ExplorerServer


def call(base: str, method: str, path: str, body: dict | None = None) -> dict:
    url = base + path
    if method == "GET":
        with urllib.request.urlopen(url, timeout=10) as response:
            return json.loads(response.read())
    request = urllib.request.Request(
        url,
        data=json.dumps(body or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    kg = SecurityKG(SystemConfig(scenario_count=12, reports_per_site=4))
    kg.run_once()
    server = ExplorerServer(ExplorerAPI(kg)).start()
    host, port = server.address
    base = f"http://{host}:{port}"
    print(f"explorer API listening on {base}")

    try:
        stats = call(base, "GET", "/api/stats")
        print(f"graph: {stats['nodes']} nodes / {stats['edges']} edges")

        malware = max(
            kg.graph.nodes("Malware"), key=lambda n: kg.graph.degree(n.node_id)
        )
        name = malware.properties["name"]

        print(f"\nPOST /api/search {{query: {name!r}}}")
        result = call(base, "POST", "/api/search", {"query": name})
        print(f"  {len(result['reports'])} reports, "
              f"view focused on {len(result['view']['nodes'])} node(s)")

        focus_id = result["view"]["nodes"][0]["id"]
        print(f"\nPOST /api/expand {{id: {focus_id}}}  (double-click)")
        result = call(base, "POST", "/api/expand", {"id": focus_id})
        print(f"  spawned {len(result['spawned'])} neighbours; "
              f"view: {len(result['view']['nodes'])} nodes")
        for node in result["view"]["nodes"][:6]:
            print(f"    ({node['x']:7.1f},{node['y']:7.1f}) "
                  f"{node['label']:<14} {node['name']}")

        target = result["view"]["nodes"][1]["id"]
        print(f"\nPOST /api/drag {{id: {target}, x: 10, y: 10}}")
        result = call(base, "POST", "/api/drag", {"id": target, "x": 10, "y": 10})
        pinned = [n["id"] for n in result["view"]["nodes"] if n["pinned"]]
        print(f"  pinned nodes: {pinned}")

        print(f"\nPOST /api/collapse {{id: {focus_id}}}")
        result = call(base, "POST", "/api/collapse", {"id": focus_id})
        print(f"  hid {len(result['hidden'])} nodes")

        print("\nPOST /api/back")
        result = call(base, "POST", "/api/back", {})
        print(f"  view restored to {len(result['view']['nodes'])} nodes")

        print("\nPOST /api/random {size: 8}")
        result = call(base, "POST", "/api/random", {"size": 8, "seed": 1})
        print(f"  random subgraph: {len(result['view']['nodes'])} nodes")

        print("\nPOST /api/cypher")
        result = call(
            base,
            "POST",
            "/api/cypher",
            {"query": f'match (n) where n.name = "{name}" return n'},
        )
        print(f"  rows: {len(result['rows'])}; "
              f"first: {result['rows'][0]['n']['properties']['name']!r}")
    finally:
        server.stop()
        print("\nserver stopped")


if __name__ == "__main__":
    main()
