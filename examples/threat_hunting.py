"""Knowledge-enhanced threat protection (the paper's future work).

Connects the knowledge graph to system-audit-based threat protection:
build the KG from collected reports, simulate an enterprise audit
stream containing intrusions whose artifacts the reports disclosed,
and hunt.  The comparison at the end shows what the *graph* adds over
a flat indicator feed: attribution, incident correlation, coincidence
suppression, and a hunt-forward list.

Run:  python examples/threat_hunting.py
"""

from repro import SecurityKG, SystemConfig
from repro.apps.threat_hunting import IocFeedHunter, ThreatHunter
from repro.audit import simulate


def main() -> None:
    print("== building the knowledge graph from collected OSCTI ==")
    kg = SecurityKG(
        SystemConfig(scenario_count=12, reports_per_site=4, connectors=["graph"])
    )
    report = kg.run_once()
    print(f"ingested {report.reports_stored} reports -> "
          f"{kg.graph.node_count} nodes / {kg.graph.edge_count} edges")

    print("\n== simulating an enterprise audit stream ==")
    log = simulate(
        kg.web.scenarios,
        attacks=3,
        benign_events=500,
        contamination_per_scenario=2,
    )
    attacks = len(log.attack_event_ids)
    print(f"{len(log.entries)} audit events on 12 hosts; "
          f"{attacks} belong to 3 real intrusions; a few benign events "
          "coincidentally touch known-bad infrastructure")

    print("\n== knowledge-enhanced hunt ==")
    hunter = ThreatHunter(kg.graph)
    incidents = hunter.hunt(log.events)
    confirmed = [i for i in incidents if i.confirmed]
    suspected = [i for i in incidents if not i.confirmed]
    for incident in confirmed:
        print(incident.summary())
        print()
    print(f"({len(suspected)} single-indicator suspicions left unconfirmed "
          "-- the coincidental matches)")

    detected = {
        a.event.event_id
        for incident in confirmed
        for a in incident.alerts
    } & log.attack_event_ids
    print(f"attack-event coverage by confirmed incidents: "
          f"{len(detected)}/{attacks}")

    print("\n== flat indicator feed, for comparison ==")
    feed = IocFeedHunter.from_graph(kg.graph)
    feed_alerts = feed.scan(log.events)
    contaminated = sum(
        1
        for a in feed_alerts
        if log.truth_for(a.event.event_id).label == "contaminated"
    )
    print(f"{len(feed_alerts)} undifferentiated alerts "
          f"({contaminated} of them false positives from coincidental "
          "matches), zero attribution, no incidents, no hunt-forward -- "
          "every alert lands on an analyst's queue with equal weight")


if __name__ == "__main__":
    main()
