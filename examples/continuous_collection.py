"""Continuous gathering: periodic crawls, incremental growth, fusion.

The paper's system "updates the knowledge graph by continuously
ingesting new data" with a crawler framework that handles "periodic
execution and reboot after failure".  This example runs several
scheduled collection cycles against a web whose sites keep publishing,
with transport failures injected, and tracks how the knowledge graph
grows.  The crawls simulate realistic page latency on the system's
virtual clock (``clock="virtual"``): the printed crawl seconds are
what a real deployment would spend, but the example runs instantly.

Run:  python examples/continuous_collection.py
"""

from repro import SecurityKG, SystemConfig
from repro.apps import GrowthTracker
from repro.crawlers import JobSpec, PeriodicScheduler


def main() -> None:
    # Start with a small archive; between cycles every site publishes
    # three new reports (URLs of existing reports stay stable, so the
    # incremental crawl state skips them).
    cycles = 4
    config = SystemConfig(
        scenario_count=12,
        reports_per_site=3,
        failure_rate=0.15,  # transient 5xx / resets; the fetcher retries
        time_scale=1.0,  # realistic 20-220ms page latency ...
        clock="virtual",  # ... simulated instantly on the virtual clock
        connectors=["graph", "search"],
    )
    kg = SecurityKG(config)
    tracker = GrowthTracker(kg.graph)
    state = {"first": True}

    def collect_cycle():
        if state["first"]:
            state["first"] = False
        else:
            kg.web.publish_everywhere(3)
        report = kg.run_once()
        point = tracker.record(report.reports_stored)
        print(
            f"  cycle: +{report.reports_stored} new reports "
            f"(crawl {report.crawl.elapsed:.2f}s, "
            f"{len(report.crawl.errors)} fetch failures) "
            f"-> graph {point.nodes} nodes / {point.edges} edges"
        )
        return report

    print("== periodic collection (4 cycles, 15% transport failures) ==")
    scheduler = PeriodicScheduler(
        [JobSpec(name="collect", run=collect_cycle, max_restarts=2)],
        interval=0.0,
    )
    scheduler.run_cycles(cycles=cycles)
    print(f"scheduler: {scheduler.stats.runs} runs, "
          f"{scheduler.stats.reboots} reboots, "
          f"{scheduler.stats.failures} permanent failures")

    print("\n== knowledge-graph growth ==")
    print(f"  {'reports':>8} {'nodes':>7} {'edges':>7}")
    for reports, nodes, edges in tracker.series():
        print(f"  {reports:>8} {nodes:>7} {edges:>7}")

    print("\n== periodic knowledge fusion ==")
    fusion = kg.run_fusion()
    print(f"  merged {fusion.groups_merged} alias groups; "
          f"{fusion.nodes_before} -> {fusion.nodes_after} nodes")

    print("\nthe graph keeps growing as sources publish; re-crawls skip "
          "everything already collected (incremental state).")


if __name__ == "__main__":
    main()
