"""Quickstart: collect, process, store, query.

Builds a SecurityKG over the simulated OSCTI web, runs one full
collection cycle, and shows the two search paths (keyword and Cypher)
plus the knowledge-graph statistics.

Run:  python examples/quickstart.py
"""

from repro import SecurityKG, SystemConfig
from repro.apps import compute_stats


def main() -> None:
    config = SystemConfig(
        scenario_count=15,         # distinct incidents in the simulated world
        reports_per_site=5,        # articles per source (42 sources)
        connectors=["graph", "search"],
        recognizer="gazetteer",    # fast; switch to "crf" for the full pipeline
    )
    kg = SecurityKG(config)

    print("== one collection cycle ==")
    report = kg.run_once()
    print(report.describe())

    print("\n== knowledge graph ==")
    print(compute_stats(kg.graph).describe())

    malware = max(kg.graph.nodes("Malware"), key=lambda n: kg.graph.degree(n.node_id))
    name = malware.properties["name"]

    print(f"\n== keyword search: {name!r} (the Elasticsearch path) ==")
    for hit in kg.keyword_search(name, limit=5):
        print(f"  {hit.score:6.2f}  {hit.fields['title']}  [{hit.fields['source']}]")

    print(f"\n== Cypher search (the Neo4j path) ==")
    query = f'match (n) where n.name = "{name}" return n'
    print(f"  {query}")
    for row in kg.cypher(query):
        node = row["n"]
        print(f"  -> node {node.node_id}: {node.label} {node.properties['name']!r}")

    print("\n== multi-hop Cypher: what does this malware connect to? ==")
    rows = kg.cypher(
        f'MATCH (m:Malware {{name: "{name}"}})-[:CONNECTS_TO]->(x) RETURN x.name'
    )
    for row in rows:
        print(f"  connects to {row['x.name']}")

    print("\n== EXPLAIN: the physical plan the optimizer chose ==")
    plan_rows = kg.cypher(
        f'EXPLAIN MATCH (m:Malware {{name: "{name}"}})-[:CONNECTS_TO]->(x) '
        "RETURN x.name"
    )
    for row in plan_rows:
        print(f"  {row['plan']}")

    print("\n== paginated Cypher (preemptable execution) ==")
    page = kg.cypher_paginated("MATCH (n:Malware) RETURN n.name", page_size=5)
    total = len(page.rows)
    while page.continuation is not None:
        page = kg.cypher_paginated(
            "MATCH (n:Malware) RETURN n.name",
            page_size=5,
            continuation=page.continuation,
        )
        total += len(page.rows)
    print(f"  streamed {total} rows in pages of 5")

    print("\n== knowledge fusion (aliases across vendor conventions) ==")
    fusion = kg.run_fusion()
    print(
        f"  merged {fusion.groups_merged} alias groups "
        f"({fusion.nodes_before} -> {fusion.nodes_after} nodes)"
    )
    for group in fusion.merged_groups[:5]:
        print(f"  {' == '.join(group)}")


if __name__ == "__main__":
    main()
