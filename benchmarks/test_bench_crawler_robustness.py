"""E2 -- crawler coverage, periodic execution and reboot after failure.

Claims (section 2.2): 40+ crawlers, one per source; the framework
"schedules the periodic execution and reboot after failure for
different crawlers in an efficient and robust manner"; collection is
periodic and *incremental*.

Reproduction: crawl all sources with 15% injected transport failures
(retries must recover everything), crash a crawler job and watch the
scheduler reboot it, and re-crawl to confirm incremental no-op.  The
whole experiment runs under a :class:`~repro.runtime.VirtualClock`
with realistic latency (``time_scale=1.0``): retry backoff and
politeness delays are simulated exactly but cost no wall time.
"""

import time

from conftest import record_result

from repro.crawlers import (
    CRAWLER_REGISTRY,
    CrawlEngine,
    CrawlState,
    Fetcher,
    JobSpec,
    PeriodicScheduler,
    build_all_crawlers,
)
from repro.runtime import VirtualClock
from repro.websim import SimulatedTransport, build_default_web


def test_bench_robust_crawl(benchmark):
    web = build_default_web(scenario_count=15, reports_per_site=3)
    bench_started = time.perf_counter()

    def robust_crawl():
        transport = SimulatedTransport(
            web, time_scale=1.0, failure_rate=0.15, clock=VirtualClock()
        )
        fetcher = Fetcher(transport, max_retries=4, backoff=0.05)
        engine = CrawlEngine(build_all_crawlers(), fetcher, num_threads=8)
        return engine.crawl(), fetcher

    (result, fetcher) = benchmark.pedantic(robust_crawl, rounds=1, iterations=1)
    stats = fetcher.stats.snapshot()

    # incremental re-crawl with shared state collects nothing new
    state = CrawlState()
    first = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=1.0, clock=VirtualClock())),
        num_threads=8,
        state=state,
    ).crawl()
    second = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=1.0, clock=VirtualClock())),
        num_threads=8,
        state=state,
    ).crawl()

    # scheduler reboots a crashing job, backing off on virtual time
    crashes = {"left": 2}
    scheduler_clock = VirtualClock()

    def flaky_job():
        if crashes["left"] > 0:
            crashes["left"] -= 1
            raise ConnectionError("site went away")
        return "ok"

    scheduler = PeriodicScheduler(
        [JobSpec("flaky-crawler", flaky_job, max_restarts=3, backoff=0.5)],
        clock=scheduler_clock,
    )
    outcomes = scheduler.run_cycles(1)
    wall_s = time.perf_counter() - bench_started

    print("\nE2: crawler coverage and robustness")
    print(f"  registered crawlers: {len(CRAWLER_REGISTRY)} (paper: 40+)")
    print(
        f"  with 15% injected failures: {result.article_count}/"
        f"{web.total_reports} reports collected, "
        f"{stats['retries']} retries, {result.errors and len(result.errors) or 0} "
        "permanent errors"
    )
    print(
        f"  incremental: first crawl {first.article_count} reports, "
        f"re-crawl {second.article_count} (expected 0)"
    )
    print(
        f"  scheduler reboot-after-failure: job crashed twice, outcome "
        f"{outcomes[0].status!r} after {outcomes[0].attempts} attempts, "
        f"{scheduler_clock.now():.1f}s of virtual backoff"
    )
    print(
        f"  wall time: {wall_s:.2f}s for {result.elapsed:.1f}s of "
        "simulated crawling (virtual clock)"
    )

    record_result(
        "E2",
        {
            "crawlers": len(CRAWLER_REGISTRY),
            "collected_with_failures": result.article_count,
            "expected": web.total_reports,
            "retries": stats["retries"],
            "incremental_second_crawl": second.article_count,
            "reboot_outcome": outcomes[0].status,
            "virtual_backoff_s": round(scheduler_clock.now(), 2),
            "wall_s": round(wall_s, 2),
        },
    )
    assert len(CRAWLER_REGISTRY) >= 40
    assert result.article_count == web.total_reports
    assert second.article_count == 0
    assert outcomes[0].status == "rebooted"
    # exact virtual backoff: two reboots at 0.5s and 1.0s
    assert scheduler_clock.now() == 1.5
    # wall-time budget: the simulated seconds must not be slept for real
    assert wall_s < 20.0, f"virtual-clock robustness run burned {wall_s:.1f}s"
