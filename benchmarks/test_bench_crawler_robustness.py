"""E2 -- crawler coverage, periodic execution and reboot after failure.

Claims (section 2.2): 40+ crawlers, one per source; the framework
"schedules the periodic execution and reboot after failure for
different crawlers in an efficient and robust manner"; collection is
periodic and *incremental*.

Reproduction: crawl all sources with 15% injected transport failures
(retries must recover everything), crash a crawler job and watch the
scheduler reboot it, and re-crawl to confirm incremental no-op.
"""

from conftest import record_result

from repro.crawlers import (
    CRAWLER_REGISTRY,
    CrawlEngine,
    CrawlState,
    Fetcher,
    JobSpec,
    PeriodicScheduler,
    build_all_crawlers,
)
from repro.websim import SimulatedTransport, build_default_web


def test_bench_robust_crawl(benchmark):
    web = build_default_web(scenario_count=15, reports_per_site=3)

    def robust_crawl():
        transport = SimulatedTransport(web, time_scale=0.0, failure_rate=0.15)
        fetcher = Fetcher(transport, max_retries=4, backoff=0.001)
        engine = CrawlEngine(build_all_crawlers(), fetcher, num_threads=8)
        return engine.crawl(), fetcher

    (result, fetcher) = benchmark.pedantic(robust_crawl, rounds=1, iterations=1)
    stats = fetcher.stats.snapshot()

    # incremental re-crawl with shared state collects nothing new
    state = CrawlState()
    first = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=0.0)),
        num_threads=8,
        state=state,
    ).crawl()
    second = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=0.0)),
        num_threads=8,
        state=state,
    ).crawl()

    # scheduler reboots a crashing job
    crashes = {"left": 2}

    def flaky_job():
        if crashes["left"] > 0:
            crashes["left"] -= 1
            raise ConnectionError("site went away")
        return "ok"

    scheduler = PeriodicScheduler(
        [JobSpec("flaky-crawler", flaky_job, max_restarts=3, backoff=0.0)]
    )
    outcomes = scheduler.run_cycles(1)

    print("\nE2: crawler coverage and robustness")
    print(f"  registered crawlers: {len(CRAWLER_REGISTRY)} (paper: 40+)")
    print(
        f"  with 15% injected failures: {result.article_count}/"
        f"{web.total_reports} reports collected, "
        f"{stats['retries']} retries, {result.errors and len(result.errors) or 0} "
        "permanent errors"
    )
    print(
        f"  incremental: first crawl {first.article_count} reports, "
        f"re-crawl {second.article_count} (expected 0)"
    )
    print(
        f"  scheduler reboot-after-failure: job crashed twice, outcome "
        f"{outcomes[0].status!r} after {outcomes[0].attempts} attempts"
    )

    record_result(
        "E2",
        {
            "crawlers": len(CRAWLER_REGISTRY),
            "collected_with_failures": result.article_count,
            "expected": web.total_reports,
            "retries": stats["retries"],
            "incremental_second_crawl": second.article_count,
            "reboot_outcome": outcomes[0].status,
        },
    )
    assert len(CRAWLER_REGISTRY) >= 40
    assert result.article_count == web.total_reports
    assert second.article_count == 0
    assert outcomes[0].status == "rebooted"
