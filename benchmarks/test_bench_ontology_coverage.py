"""E9 -- ontology coverage (paper Figure 2 / section 2.3).

Claim: the ontology models three report types, vendors, threat actors,
techniques, tools, software, malware, vulnerabilities and eight IOC
kinds, with typed relations -- "a larger set" than other cyber
ontologies.

Reproduction: ingest the full simulated corpus and verify every
ontology node type and a representative spread of edge types actually
materialise in the knowledge graph, with per-type counts (the stats
the demo shows while the database fills).
"""

from conftest import record_result

from repro import SecurityKG, SystemConfig
from repro.apps import compute_stats
from repro.ontology import EntityType, RelationType


def test_bench_ontology_coverage(benchmark):
    kg = SecurityKG(
        SystemConfig(scenario_count=20, reports_per_site=6, connectors=["graph"])
    )

    def ingest():
        kg.run_once()
        return compute_stats(kg.graph)

    stats = benchmark.pedantic(ingest, rounds=1, iterations=1)

    expected_node_types = {t.value for t in EntityType} - {
        EntityType.CAMPAIGN.value  # generated corpora model campaigns as actors
    }
    missing_nodes = expected_node_types - set(stats.labels)
    behavioural_edges = {
        RelationType.DROPS,
        RelationType.CONNECTS_TO,
        RelationType.COMMUNICATES_WITH,
        RelationType.USES,
        RelationType.EXPLOITS,
        RelationType.ENCRYPTS,
        RelationType.ATTRIBUTED_TO,
        RelationType.MODIFIES,
        RelationType.AFFECTS,
        RelationType.SPREADS_VIA,
    }
    missing_edges = {t.value for t in behavioural_edges} - set(stats.edge_types)

    print("\nE9: ontology coverage after full-corpus ingest")
    print(f"  nodes: {stats.nodes}, edges: {stats.edges}")
    print("  node types materialised:")
    for label, count in stats.labels.items():
        print(f"    {label:<22} {count}")
    print("  behavioural edge types materialised:")
    for edge_type, count in stats.edge_types.items():
        print(f"    {edge_type:<22} {count}")
    print(f"  missing node types: {sorted(missing_nodes) or 'none'}")
    print(f"  missing behavioural edges: {sorted(missing_edges) or 'none'}")

    record_result(
        "E9",
        {
            "nodes": stats.nodes,
            "edges": stats.edges,
            "labels": stats.labels,
            "edge_types": stats.edge_types,
            "missing_node_types": sorted(missing_nodes),
            "missing_edge_types": sorted(missing_edges),
        },
    )
    assert not missing_nodes
    assert not missing_edges
    # the three report categories of section 2.3 all appear
    for report_type in ("MalwareReport", "VulnerabilityReport", "AttackReport"):
        assert stats.labels.get(report_type, 0) > 0
