"""E18 -- crash recovery of the unified storage engine.

The paper's storage stage inherits durability from Neo4j and
Elasticsearch; this reproduction owns it in :mod:`repro.storage`.  Two
claims to quantify:

1. **Crash matrix.**  Killing a deployment at *every* registered crash
   point and reopening converges the graph, search index and crawl
   state to the contents of an uninterrupted run -- zero lost reports,
   zero duplicated ingests (the exactly-once marker discipline).
2. **Recovery time vs journal length.**  Reopening replays the journal,
   so recovery cost grows with commits since the last checkpoint and
   collapses after one.

Runs entirely on the virtual clock; wall time is a few seconds.
"""

import json
import time

from conftest import RESULTS_PATH, record_result

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.graphdb.wal import GraphDatabase
from repro.storage import CRASH_POINTS, CrashInjector, InjectedCrash

WORKLOAD = dict(
    scenario_count=6,
    reports_per_site=2,
    sources=["ThreatPedia", "MalwareBulletin"],
    connectors=["graph", "search"],
    clock="virtual",
    seed=7,
)


def make_kg(path, faults=None):
    return SecurityKG(SystemConfig(storage_path=str(path), **WORKLOAD), faults=faults)


def _node_key(graph, node_id):
    node = graph.node(node_id)
    return (
        node.label,
        str(node.properties.get("merge_key", node.properties.get("name", ""))),
    )


def _props(properties):
    out = dict(properties)
    if isinstance(out.get("reports"), list):
        out["reports"] = sorted(out["reports"])
    return json.dumps(out, sort_keys=True)


def fingerprint(kg):
    """Node-id-free contents of every store (crawl timestamps excluded,
    because a resumed run's virtual clock legitimately restarts)."""
    graph = kg.graph
    return {
        "nodes": sorted((n.label, _props(n.properties)) for n in graph.nodes()),
        "edges": sorted(
            (_node_key(graph, e.src), e.type, _node_key(graph, e.dst),
             _props(e.properties))
            for e in graph.edges()
        ),
        "search": kg.connectors["search"].index.to_state()["documents"],
        "seen": sorted(kg.engine.participant("crawl").seen),
        "ingested": kg.engine.ingested_ids(),
    }


def test_bench_crash_matrix(tmp_path):
    """Kill at every crash point; measure loss/duplication after resume."""
    reference = make_kg(tmp_path / "reference")
    reference.run_once()
    reference.checkpoint()
    expected = fingerprint(reference)
    expected_ids = set(expected["ingested"])
    reference.close()
    assert expected_ids

    rows = []
    for index, point in enumerate(CRASH_POINTS):
        path = tmp_path / f"crash-{index}"
        kg = make_kg(path, faults=CrashInjector(point))
        try:
            kg.run_once()
            kg.checkpoint()
            raise AssertionError(f"crash point {point!r} never reached")
        except InjectedCrash:
            pass

        resumed = make_kg(path)
        durable_before = resumed.engine.ingested_count
        report = resumed.run_once()
        resumed.checkpoint()
        got = fingerprint(resumed)
        got_ids = set(got["ingested"])
        lost = len(expected_ids - got_ids)
        duplicated = (
            durable_before + report.reports_stored + report.reports_skipped
        ) - len(got_ids)
        rows.append(
            {
                "point": point,
                "durable_before_resume": durable_before,
                "resumed_stored": report.reports_stored,
                "lost": lost,
                "duplicated": duplicated,
                "converged": got == expected,
            }
        )
        resumed.close()

    print("\nE18: crash matrix (kill -> reopen -> resume, virtual clock)")
    print(f"  {'crash point':<28} {'durable':>8} {'resumed':>8} "
          f"{'lost':>5} {'dup':>4}  converged")
    for row in rows:
        print(
            f"  {row['point']:<28} {row['durable_before_resume']:>8} "
            f"{row['resumed_stored']:>8} {row['lost']:>5} "
            f"{row['duplicated']:>4}  {row['converged']}"
        )

    assert all(row["lost"] == 0 for row in rows)
    assert all(row["duplicated"] == 0 for row in rows)
    assert all(row["converged"] for row in rows)

    record_result(
        "E18",
        {
            "claim": "recovery converges with zero lost or duplicated "
            "reports at every crash point",
            "workload_reports": len(expected_ids),
            "matrix": rows,
        },
    )


def test_bench_recovery_time_vs_journal_length(tmp_path):
    """Reopen cost grows with the journal; a checkpoint collapses it."""
    series = []
    for commits in (64, 256, 1024):
        path = tmp_path / f"journal-{commits}"
        db = GraphDatabase(path, fsync=False)
        for i in range(commits):
            db.create_node("N", {"name": f"n{i}", "i": i})
        db.close()

        started = time.perf_counter()
        reopened = GraphDatabase(path, fsync=False)
        replay_ms = (time.perf_counter() - started) * 1000.0
        assert reopened.graph.node_count == commits
        reopened.snapshot()
        reopened.close()

        started = time.perf_counter()
        compacted = GraphDatabase(path, fsync=False)
        snapshot_ms = (time.perf_counter() - started) * 1000.0
        assert compacted.graph.node_count == commits
        compacted.close()
        series.append(
            {
                "commits": commits,
                "replay_reopen_ms": round(replay_ms, 2),
                "checkpointed_reopen_ms": round(snapshot_ms, 2),
            }
        )

    print("\nE18: recovery time vs journal length")
    print(f"  {'commits':>8} {'replay (ms)':>12} {'after ckpt (ms)':>16}")
    for row in series:
        print(
            f"  {row['commits']:>8} {row['replay_reopen_ms']:>12} "
            f"{row['checkpointed_reopen_ms']:>16}"
        )

    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text()).get("E18", {})
    existing["recovery_time"] = series
    record_result("E18", existing)
