"""E15 -- end-to-end system throughput and knowledge-graph growth.

Claims (sections 1-2.2): SecurityKG collects "over 120K+ OSCTI reports
and the number is still increasing", continuously ingesting new data
so the graph keeps growing.

Reproduction: run the full collect -> process -> store loop over the
42-source web, measure the sustained end-to-end ingest rate, record the
graph-growth series, and extrapolate the wall-clock time to the
paper's 120K-report archive at the measured rate.
"""

from conftest import record_result

from repro import SecurityKG, SystemConfig
from repro.apps import GrowthTracker
from repro.websim import build_default_web


def test_bench_end_to_end(benchmark):
    sizes = (3, 6, 9, 12)
    config = SystemConfig(
        scenario_count=20,
        reports_per_site=sizes[0],
        connectors=["graph", "search"],
    )
    kg = SecurityKG(config)
    tracker = GrowthTracker(kg.graph)

    elapsed_total = 0.0
    stored_total = 0
    growth = []
    for size in sizes:
        kg.web = build_default_web(
            scenario_count=config.scenario_count,
            reports_per_site=size,
            seed=config.seed,
        )
        kg.transport.web = kg.web
        report = kg.run_once()
        elapsed_total += report.crawl.elapsed + report.pipeline_elapsed
        stored_total += report.reports_stored
        point = tracker.record(report.reports_stored)
        growth.append(
            {"reports": point.reports, "nodes": point.nodes, "edges": point.edges}
        )

    benchmark.pedantic(kg.stats, rounds=3, iterations=1)

    rate_per_minute = stored_total / elapsed_total * 60
    hours_to_120k = 120_000 / rate_per_minute / 60

    print("\nE15: end-to-end ingestion and knowledge-graph growth")
    print(f"  {'reports':>8} {'nodes':>7} {'edges':>7}")
    for row in growth:
        print(f"  {row['reports']:>8} {row['nodes']:>7} {row['edges']:>7}")
    print(
        f"  sustained end-to-end rate: {rate_per_minute:.0f} reports/min "
        f"(collect + process + store)"
    )
    print(
        f"  at this rate the paper's 120K-report archive takes "
        f"~{hours_to_120k:.1f} h of continuous single-host operation"
    )

    record_result(
        "E15",
        {
            "growth": growth,
            "reports_stored": stored_total,
            "end_to_end_reports_per_minute": round(rate_per_minute, 1),
            "hours_to_120k_reports": round(hours_to_120k, 2),
        },
    )
    assert stored_total == growth[-1]["reports"]
    # growth is monotone: the graph only gains knowledge
    for earlier, later in zip(growth, growth[1:]):
        assert later["nodes"] >= earlier["nodes"]
        assert later["edges"] >= earlier["edges"]
    assert rate_per_minute > 350  # consistent with the crawl claim
