"""E7 -- ablation: data programming supplies the training corpus.

Claim (section 2.4): large annotated corpora are "expensive to obtain
manually", so annotations are synthesized programmatically with data
programming [11].

Reproduction: sweep the number of (programmatically labelled) training
reports and measure held-out F1.  Expected shape: F1 climbs steeply
with corpus size and saturates -- demonstrating that extraction quality
is bought with *synthesized* labels, at zero annotation cost.  The
label model's estimated LF accuracies are reported alongside.
"""

import random

from conftest import record_result

from repro.nlp import EntityRecognizer, evaluate_entities
from repro.nlp.labeling import synthesize_corpus
from repro.nlp.tokenize import tokenize_sentences
from repro.websim.scenario import generate_report_content, make_scenarios


def training_texts(n_reports: int):
    scenarios = make_scenarios(max(1, n_reports // 2), seed=11, known_only=True)
    texts = []
    for scenario in scenarios:
        for k in range(2):
            if len(texts) >= n_reports:
                break
            content = generate_report_content(
                scenario,
                random.Random(f"{scenario.scenario_id}-{k}"),
                sentence_count=8,
            )
            texts.append(" ".join(gs.text for gs in content.truth.sentences))
    return texts


def heldout_f1(recognizer, contents):
    predicted, gold = [], []
    for content in contents:
        text = " ".join(gs.text for gs in content.truth.sentences)
        _s, mentions = recognizer.extract(text)
        predicted += [(m.text, m.type) for m in mentions]
        gold += [
            (m.text, m.type) for gs in content.truth.sentences for m in gs.mentions
        ]
    return evaluate_entities(predicted, gold).micro.f1


def test_bench_data_programming(benchmark, heldout_contents):
    sweep = (5, 10, 20, 40, 80)
    series = []
    for n_reports in sweep:
        texts = training_texts(n_reports)
        recognizer = EntityRecognizer.train(texts, max_iterations=60)
        f1 = heldout_f1(recognizer, heldout_contents)
        series.append({"training_reports": len(texts), "f1": round(f1, 3)})

    # label-model diagnostics on a mid-sized corpus
    sentences = []
    for text in training_texts(20):
        sentences.extend(s.tokens for s in tokenize_sentences(text))
    _corpus, diagnostics = benchmark.pedantic(
        synthesize_corpus, args=(sentences,), rounds=1, iterations=1
    )

    print("\nE7: data-programming training-set sweep (zero manual labels)")
    print(f"  {'training reports':>17} {'held-out F1':>12}")
    for row in series:
        print(f"  {row['training_reports']:>17} {row['f1']:>12}")
    print("  estimated labeling-function accuracies "
          "(agreement-based, no gold):")
    for name, accuracy in sorted(diagnostics.lf_accuracies.items()):
        print(f"    {name:<28} {accuracy:.2f}")
    print(f"  token coverage of LF votes: {diagnostics.coverage:.3f}")

    record_result(
        "E7",
        {
            "series": series,
            "lf_accuracies": {
                k: round(v, 3) for k, v in diagnostics.lf_accuracies.items()
            },
            "coverage": round(diagnostics.coverage, 3),
        },
    )
    assert series[-1]["f1"] > 0.9
    assert series[-1]["f1"] > series[0]["f1"]
    # saturation: the last doubling buys little
    assert series[-1]["f1"] - series[-2]["f1"] < 0.1
