"""E8 -- storage-stage merge + deferred knowledge fusion (section 2.5).

Claims: at storage time "we only merge nodes with exactly the same
description text"; similar-name nodes (vendor naming conventions) are
merged "in a separate knowledge fusion stage ... preventing early
deletion of useful information".

Reproduction: ingest a multi-source corpus where several vendors cover
the same scenarios under different naming conventions, then run fusion.
Measured: dedup factor at storage (exact merges), alias groups resolved
at fusion, and the information-retention argument -- an eager-fusion
variant (fusing inside the pipeline after every batch) does the same
merges but pays the cost on every ingest instead of once.
"""

import time

from conftest import record_result

from repro import SecurityKG, SystemConfig
from repro.fusion import KnowledgeFusion


def build_system():
    kg = SecurityKG(
        SystemConfig(scenario_count=12, reports_per_site=5, connectors=["graph"])
    )
    return kg


def test_bench_kg_merge(benchmark):
    kg = build_system()
    report = kg.run_once()
    graph_stats = report.ingest["graph"]
    nodes_before = kg.graph.node_count

    fusion = KnowledgeFusion()
    fusion_report = benchmark.pedantic(
        fusion.run, args=(kg.graph,), rounds=1, iterations=1
    )

    # eager variant: re-ingest the same corpus batch-by-batch, fusing
    # after every batch (what the paper's design avoids)
    eager = build_system()
    crawl = eager.crawl()
    ported = eager.porter.port(crawl.documents)
    passed = eager.checker.filter(ported).passed
    batch = max(1, len(passed) // 8)
    eager_fusion_time = 0.0
    eager_fusions = 0
    for i in range(0, len(passed), batch):
        records, _r = eager.process(passed[i : i + batch])
        eager.store(records)
        started = time.monotonic()
        eager.run_fusion()
        eager_fusion_time += time.monotonic() - started
        eager_fusions += 1

    print("\nE8: exact-text merge at storage, alias merge at fusion")
    print(
        f"  storage stage: {graph_stats.entities_created} nodes created, "
        f"{graph_stats.entities_merged} exact-text merges "
        f"(dedup factor {graph_stats.entities_merged / max(1, graph_stats.entities_created):.1f}x)"
    )
    print(
        f"  fusion stage: {fusion_report.groups_merged} alias groups, "
        f"{fusion_report.aliases_resolved} aliases resolved, "
        f"{nodes_before} -> {fusion_report.nodes_after} nodes"
    )
    for group in fusion_report.merged_groups[:4]:
        print(f"    {' == '.join(group)}")
    print(
        f"  deferred-fusion design: 1 fusion pass vs eager variant's "
        f"{eager_fusions} passes ({eager_fusion_time:.2f}s total)"
    )
    assert eager.graph.node_count == fusion_report.nodes_after, (
        "deferred and eager fusion must converge to the same graph size"
    )
    print("  converged to identical node counts: True")

    record_result(
        "E8",
        {
            "entities_created": graph_stats.entities_created,
            "exact_merges": graph_stats.entities_merged,
            "fusion_groups": fusion_report.groups_merged,
            "aliases_resolved": fusion_report.aliases_resolved,
            "nodes_before_fusion": nodes_before,
            "nodes_after_fusion": fusion_report.nodes_after,
            "eager_fusion_passes": eager_fusions,
            "eager_fusion_seconds": round(eager_fusion_time, 3),
            "sample_groups": fusion_report.merged_groups[:5],
        },
    )
    assert graph_stats.entities_merged > graph_stats.entities_created
    assert fusion_report.groups_merged >= 3
