"""E1 -- crawler throughput (paper section 2.2).

Claim: the multi-threaded crawler framework achieves "a throughput of
approximately 350+ reports per minute at a single deployed host".

Reproduction: crawl the 42 simulated sources with realistic per-page
latency (the sites are configured with 20-220 ms response times,
comparable to real web endpoints) and sweep the worker-thread count.
The expected shape: throughput scales with threads until latency is
fully overlapped, and the multi-threaded figure clears 350 reports/min.
"""

from conftest import record_result

from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.websim import SimulatedTransport, build_default_web


def crawl_with_threads(web, threads: int):
    transport = SimulatedTransport(web, time_scale=1.0)
    engine = CrawlEngine(
        build_all_crawlers(),
        Fetcher(transport),
        num_threads=threads,
    )
    return engine.crawl()


def test_bench_throughput_sweep(benchmark):
    """Reports/minute vs worker threads (the paper's deployment knob)."""
    web = build_default_web(scenario_count=20, reports_per_site=2)
    series = []
    for threads in (1, 2, 4, 8, 16):
        result = crawl_with_threads(web, threads)
        assert result.article_count == web.total_reports
        series.append(
            {
                "threads": threads,
                "reports_per_minute": round(result.reports_per_minute, 1),
                "elapsed_s": round(result.elapsed, 2),
            }
        )

    # benchmark the deployed configuration (16 threads) for the record
    outcome = benchmark.pedantic(
        crawl_with_threads, args=(web, 16), rounds=1, iterations=1
    )
    deployed = outcome.reports_per_minute

    print("\nE1: crawler throughput (42 sources, simulated web latency)")
    print(f"  {'threads':>8} {'reports/min':>12} {'elapsed (s)':>12}")
    for row in series:
        print(
            f"  {row['threads']:>8} {row['reports_per_minute']:>12} "
            f"{row['elapsed_s']:>12}"
        )
    print(f"  paper claim: ~350+ reports/min single host (multi-threaded)")
    print(f"  measured (16 threads): {deployed:.0f} reports/min")

    record_result(
        "E1",
        {
            "claim": "350+ reports/min, single host, multi-threaded",
            "series": series,
            "deployed_reports_per_minute": round(deployed, 1),
        },
    )
    assert deployed > 350, "multi-threaded crawl should clear the paper's figure"
    assert series[-1]["reports_per_minute"] > series[0]["reports_per_minute"] * 4
