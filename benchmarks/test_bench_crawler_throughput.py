"""E1 -- crawler throughput (paper section 2.2).

Claim: the multi-threaded crawler framework achieves "a throughput of
approximately 350+ reports per minute at a single deployed host".

Reproduction: crawl the 42 simulated sources with realistic per-page
latency (the sites are configured with 20-220 ms response times,
comparable to real web endpoints) and sweep the worker-thread count.
The expected shape: throughput scales with threads until latency is
fully overlapped, and the multi-threaded figure clears 350 reports/min.

The sweep runs under a :class:`~repro.runtime.VirtualClock`: the same
latency profile is *simulated* instead of slept, so the whole series
costs milliseconds of wall time.  One real-clock anchor point (4
threads) validates that the virtual series matches reality within 10%.
"""

import time

from conftest import record_result

from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.runtime import VirtualClock
from repro.websim import SimulatedTransport, build_default_web


def crawl_with_threads(web, threads: int, clock=None):
    transport = SimulatedTransport(web, time_scale=1.0, clock=clock)
    engine = CrawlEngine(
        build_all_crawlers(),
        Fetcher(transport),
        num_threads=threads,
    )
    return engine.crawl()


def test_bench_throughput_sweep(benchmark):
    """Reports/minute vs worker threads (the paper's deployment knob)."""
    web = build_default_web(scenario_count=20, reports_per_site=2)

    sweep_started = time.perf_counter()
    series = []
    for threads in (1, 2, 4, 8, 16):
        result = crawl_with_threads(web, threads, clock=VirtualClock())
        assert result.article_count == web.total_reports
        series.append(
            {
                "threads": threads,
                "reports_per_minute": round(result.reports_per_minute, 1),
                "elapsed_s": round(result.elapsed, 2),
            }
        )
    sweep_wall_s = time.perf_counter() - sweep_started

    # real-clock anchor: the virtual series must match reality
    anchor_started = time.perf_counter()
    anchor = crawl_with_threads(web, 4)
    anchor_wall_s = time.perf_counter() - anchor_started
    virtual_4 = next(r for r in series if r["threads"] == 4)
    anchor_delta = (
        virtual_4["reports_per_minute"] / anchor.reports_per_minute - 1.0
    )

    # benchmark the deployed configuration (16 threads) for the record
    outcome = benchmark.pedantic(
        crawl_with_threads,
        args=(web, 16),
        kwargs={"clock": VirtualClock()},
        rounds=1,
        iterations=1,
    )
    deployed = outcome.reports_per_minute

    # what the sweep would have cost on the real clock: the simulated
    # seconds it reported (the anchor shows they track reality)
    simulated_sweep_s = sum(row["elapsed_s"] for row in series)
    speedup = simulated_sweep_s / max(sweep_wall_s, 1e-9)

    print("\nE1: crawler throughput (42 sources, simulated web latency)")
    print(f"  {'threads':>8} {'reports/min':>12} {'elapsed (s)':>12}")
    for row in series:
        print(
            f"  {row['threads']:>8} {row['reports_per_minute']:>12} "
            f"{row['elapsed_s']:>12}"
        )
    print(f"  paper claim: ~350+ reports/min single host (multi-threaded)")
    print(f"  measured (16 threads, virtual): {deployed:.0f} reports/min")
    print(
        f"  real-clock anchor (4 threads): {anchor.reports_per_minute:.0f} "
        f"reports/min vs virtual {virtual_4['reports_per_minute']:.0f} "
        f"({anchor_delta * 100:+.1f}%)"
    )
    print(
        f"  sweep wall time: {sweep_wall_s:.2f}s for "
        f"{simulated_sweep_s:.1f} simulated seconds ({speedup:.0f}x)"
    )

    record_result(
        "E1",
        {
            "claim": "350+ reports/min, single host, multi-threaded",
            "series": series,
            "deployed_reports_per_minute": round(deployed, 1),
            "anchor_threads": 4,
            "anchor_reports_per_minute": round(anchor.reports_per_minute, 1),
            "anchor_delta_pct": round(anchor_delta * 100, 1),
            "sweep_wall_s": round(sweep_wall_s, 2),
            "anchor_wall_s": round(anchor_wall_s, 2),
            "simulated_sweep_s": round(simulated_sweep_s, 1),
        },
    )
    assert deployed > 350, "multi-threaded crawl should clear the paper's figure"
    # same series shape as a real-clock run: monotone in threads ...
    rpm = [row["reports_per_minute"] for row in series]
    assert rpm == sorted(rpm)
    assert rpm[-1] > rpm[0] * 4
    # ... and within 10% of reality at the anchor point
    assert abs(anchor_delta) <= 0.10, (
        f"virtual series diverges {anchor_delta * 100:+.1f}% from the "
        "real-clock anchor"
    )
    # the virtual sweep must be at least 5x cheaper than sleeping it
    assert speedup >= 5.0, (
        f"virtual sweep only {speedup:.1f}x faster than simulated seconds"
    )
    # hard wall-time budget: accidental real sleeping fails fast
    assert sweep_wall_s < 20.0, f"virtual sweep burned {sweep_wall_s:.1f}s of wall time"
