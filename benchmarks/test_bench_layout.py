"""E11 -- Barnes-Hut layout (paper section 2.6).

Claim: the UI prevents node overlap "through an automatic graph layout
using the Barnes-Hut algorithm, which calculates the nodes'
approximated repulsive force based on their distribution".

Reproduction: lay out graphs of growing size with Barnes-Hut vs exact
O(n^2) repulsion.  Expected shape: per-step cost grows ~quadratically
for exact and ~n log n for Barnes-Hut (the crossover appears by a few
hundred nodes), with equal layout quality (zero overlaps) and bounded
force-approximation error.
"""

import math
import random
import time

from conftest import record_result

from repro.ui.layout import ForceLayout, LayoutConfig
from repro.ui.quadtree import Body, QuadTree, exact_repulsion


def random_graph(n, seed=1):
    rng = random.Random(seed)
    nodes = list(range(n))
    edges = [(i, rng.randrange(0, max(1, i))) for i in range(1, n)]
    extra = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(n // 2)
    ]
    return nodes, edges + [e for e in extra if e[0] != e[1]]


def layout_steps_per_second(n, use_bh, steps=5):
    nodes, edges = random_graph(n)
    layout = ForceLayout(
        config=LayoutConfig(width=2000, height=2000), use_barnes_hut=use_bh
    )
    for node in nodes:
        layout.add_node(node)
    layout.set_edges(edges)
    started = time.perf_counter()
    for _ in range(steps):
        layout.step()
    return steps / (time.perf_counter() - started)


def test_bench_layout_barnes_hut(benchmark):
    sizes = (50, 100, 200, 400, 800)
    series = []
    for n in sizes:
        bh = layout_steps_per_second(n, use_bh=True)
        exact = layout_steps_per_second(n, use_bh=False)
        series.append(
            {
                "nodes": n,
                "bh_steps_per_s": round(bh, 1),
                "exact_steps_per_s": round(exact, 1),
                "speedup": round(bh / exact, 2),
            }
        )

    benchmark.pedantic(
        layout_steps_per_second, args=(400, True), rounds=1, iterations=1
    )

    # force-approximation error at theta=0.7
    rng = random.Random(7)
    bodies = [
        Body(rng.uniform(0, 1000), rng.uniform(0, 1000), key=i) for i in range(300)
    ]
    tree = QuadTree.build(bodies, theta=0.7)
    errors = []
    for body in bodies[:40]:
        approx = tree.force_on(body, strength=100.0)
        exact = exact_repulsion(bodies, body, strength=100.0)
        scale = math.hypot(*exact) or 1.0
        errors.append(math.hypot(approx[0] - exact[0], approx[1] - exact[1]) / scale)
    mean_error = sum(errors) / len(errors)

    # layout quality: no overlaps on a mid-sized graph (longer anneal
    # with a hotter schedule, as an interactive canvas would run)
    nodes, edges = random_graph(150)
    layout = ForceLayout(
        config=LayoutConfig(
            width=3000,
            height=3000,
            repulsion=3000,
            ideal_edge_length=120,
            initial_temperature=120,
            cooling=0.97,
        )
    )
    for node in nodes:
        layout.add_node(node)
    layout.set_edges(edges)
    layout.run(iterations=300, tolerance=0.5)
    overlaps = layout.overlap_count()

    print("\nE11: Barnes-Hut vs exact repulsion")
    print(f"  {'nodes':>6} {'BH steps/s':>11} {'exact steps/s':>14} {'speedup':>8}")
    for row in series:
        print(
            f"  {row['nodes']:>6} {row['bh_steps_per_s']:>11} "
            f"{row['exact_steps_per_s']:>14} {row['speedup']:>8}"
        )
    print(f"  mean force-approximation error (theta=0.7): {mean_error:.3f}")
    print(f"  node overlaps after layout (150 nodes): {overlaps}")

    record_result(
        "E11",
        {
            "series": series,
            "mean_force_error": round(mean_error, 4),
            "overlaps_after_layout": overlaps,
        },
    )
    assert series[-1]["speedup"] > 2.0, "BH must win clearly at 800 nodes"
    assert series[-1]["speedup"] > series[0]["speedup"]
    assert mean_error < 0.1
    assert overlaps == 0
