"""E21 -- multi-partition sharding: scaling and crashed-shard isolation.

Two claims to quantify:

1. **Near-linear ingest scaling.**  The store stage runs one worker per
   partition, each committing to its own engine; with per-commit I/O
   modelled on the virtual clock, doubling the partition count should
   come close to halving the batch's (virtual) wall time.  Measured as
   E1 measures crawl throughput: deterministic workload, virtual clock,
   speedup = elapsed(1 partition) / elapsed(N partitions).
2. **Crashed-shard isolation.**  Killing one partition at a seeded
   storage crash point loses only that partition's in-flight work:
   every *other* partition's durable graph / search / ingest-marker
   state is byte-identical to an uncrashed run the moment the
   deployment reopens, and a single converging re-run restores the
   killed partition too -- zero lost reports, zero duplicated ingests.

Runs entirely on the virtual clock; wall time is a few seconds.
"""

import json

from conftest import RESULTS_PATH, record_result

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.ontology.entities import EntityType
from repro.ontology.intermediate import CTIRecord, Mention
from repro.runtime import clock_from_name
from repro.sharding import ShardSet
from repro.storage import CrashInjector, InjectedCrash

#: per-commit modelled I/O latency (virtual seconds) for the scaling run
COMMIT_LATENCY = 0.005

WORKLOAD = dict(
    scenario_count=8,
    reports_per_site=2,
    sources=["ThreatPedia", "MalwareBulletin", "AdvisoryHub"],
    connectors=["graph", "search"],
    clock="virtual",
    seed=7,
)


def make_kg(path, partitions, faults=None):
    return SecurityKG(
        SystemConfig(storage_path=str(path), partitions=partitions, **WORKLOAD),
        faults=faults,
    )


def _corpus(count):
    """Deterministic records with distinct anchor entities, so placement
    spreads them the way a diverse real corpus would."""
    return [
        CTIRecord(
            report_id=f"rpt-{index:04d}",
            source="BenchSource",
            url=f"https://bench.test/report/{index}",
            title=f"analysis of sample-{index:04d}",
            mentions=[
                Mention(f"sample-{index:04d}", EntityType.MALWARE),
            ],
        )
        for index in range(count)
    ]


def test_bench_shard_scaling():
    """Virtual-time ingest throughput, 1 -> 2 -> 4 partitions."""
    count = 200
    series = []
    for partitions in (1, 2, 4):
        clock = clock_from_name("virtual")
        shards = ShardSet(partitions, clock=clock)
        records = _corpus(count)
        started = clock.now()
        outcome = shards.store(records, commit_latency=COMMIT_LATENCY)
        elapsed = clock.now() - started
        assert outcome.stored == count
        loads = [p.engine.ingested_count for p in shards.partitions]
        assert sum(loads) == count
        series.append(
            {
                "partitions": partitions,
                "virtual_elapsed_s": round(elapsed, 4),
                "reports_per_s": round(count / elapsed, 1),
                "partition_loads": loads,
            }
        )
        shards.close()

    base = series[0]["virtual_elapsed_s"]
    for row in series:
        row["speedup"] = round(base / row["virtual_elapsed_s"], 2)

    print("\nE21: ingest scaling (200 reports, 5 ms modelled commit I/O)")
    print(f"  {'partitions':>10} {'elapsed (s)':>12} {'rep/s':>8} "
          f"{'speedup':>8}  loads")
    for row in series:
        print(
            f"  {row['partitions']:>10} {row['virtual_elapsed_s']:>12} "
            f"{row['reports_per_s']:>8} {row['speedup']:>8}  "
            f"{row['partition_loads']}"
        )

    # near-linear: hash balance is the only loss (no coordination cost
    # on the virtual clock), so 4 partitions must be >= 3x faster
    assert series[1]["speedup"] >= 1.5
    assert series[2]["speedup"] >= 3.0

    record_result(
        "E21",
        {
            "claim": "ingest throughput scales near-linearly with the "
            "partition count; killing one shard leaves every other "
            "shard byte-identical to an uncrashed run",
            "scaling": series,
        },
    )


def _props(properties):
    out = dict(properties)
    if isinstance(out.get("reports"), list):
        out["reports"] = sorted(out["reports"])
    return json.dumps(out, sort_keys=True)


def _node_key(graph, node_id):
    node = graph.node(node_id)
    return (
        node.label,
        str(node.properties.get("merge_key", node.properties.get("name", ""))),
    )


def partition_fingerprint(partition, with_seen=True):
    """Node-id-free durable contents of one partition's stores.

    ``with_seen=False`` drops the crawl-seen set: staged seen-URL deltas
    become durable at the *batch* flush, which a crash legitimately
    skips on every partition, so the reopen-time isolation claim covers
    the per-commit stores (graph, search, ingest markers) only.
    """
    graph = partition.graph
    print_state = {
        "nodes": sorted(
            (n.label, _props(n.properties)) for n in graph.nodes()
        ),
        "edges": sorted(
            (_node_key(graph, e.src), e.type, _node_key(graph, e.dst),
             _props(e.properties))
            for e in graph.edges()
        ),
        "search": partition.search_index.to_state()["documents"],
        "ingested": partition.engine.ingested_ids(),
    }
    if with_seen:
        print_state["seen"] = sorted(
            partition.engine.participant("crawl").seen
        )
    return print_state


def test_bench_crashed_shard_isolation(tmp_path):
    """Kill partition 0 mid-commit; the other shards must not notice."""
    partitions = 4

    reference = make_kg(tmp_path / "reference", partitions)
    reference.run_once()
    reference.checkpoint()
    expected = [
        partition_fingerprint(p) for p in reference.shards.partitions
    ]
    expected_ids = set(reference.shards.ingested_ids())
    per_partition = [p.engine.ingested_count for p in reference.shards.partitions]
    reference.close()
    assert expected_ids
    assert all(per_partition), (
        "isolation run needs every partition to own reports: "
        f"{per_partition}"
    )

    # -- crashed run: partition 0 dies on its first commit ----------------
    path = tmp_path / "crashed"
    crashed = make_kg(path, partitions,
                      faults=CrashInjector("commit.before-append"))
    try:
        crashed.run_once()
        raise AssertionError("crash point never reached")
    except InjectedCrash:
        pass  # abandoned without close(), like a killed process

    # -- reopen: surviving shards are already byte-identical --------------
    resumed = make_kg(path, partitions)
    isolated = []
    for index in range(1, partitions):
        got = partition_fingerprint(
            resumed.shards.partitions[index], with_seen=False
        )
        want = {
            key: value
            for key, value in expected[index].items()
            if key != "seen"
        }
        isolated.append(got == want)
    durable_before = resumed.shards.partitions[0].engine.ingested_count
    lost_on_crash = per_partition[0] - durable_before

    # -- one converging re-run restores the killed shard ------------------
    report = resumed.run_once()
    resumed.checkpoint()
    recovered = [
        partition_fingerprint(p) for p in resumed.shards.partitions
    ]
    got_ids = set(resumed.shards.ingested_ids())
    lost = len(expected_ids - got_ids)
    duplicated = (
        sum(p.engine.ingested_count for p in resumed.shards.partitions)
        - len(expected_ids)
    )
    converged = [got == want for got, want in zip(recovered, expected)]
    resumed.close()

    print("\nE21: crashed-shard isolation (partition 0 killed mid-commit)")
    print(f"  reports: {len(expected_ids)} across {per_partition}")
    print(f"  partition 0 lost in-flight: {lost_on_crash}")
    print(f"  surviving shards identical at reopen: {isolated}")
    print(f"  resumed run stored {report.reports_stored}, "
          f"skipped {report.reports_skipped}")
    print(f"  converged after resume: {converged}  "
          f"lost={lost} duplicated={duplicated}")

    assert all(isolated), "a surviving shard diverged from the reference"
    assert lost_on_crash > 0, "the crash lost nothing: not a real kill"
    assert all(converged)
    assert lost == 0
    assert duplicated == 0

    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text()).get("E21", {})
    existing["isolation"] = {
        "partitions": partitions,
        "reports": len(expected_ids),
        "partition_loads": per_partition,
        "lost_in_flight_on_crash": lost_on_crash,
        "surviving_shards_identical_at_reopen": all(isolated),
        "lost_after_resume": lost,
        "duplicated_after_resume": duplicated,
    }
    record_result("E21", existing)
