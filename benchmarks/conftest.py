"""Shared benchmark fixtures and result recording.

Every benchmark prints the paper-shaped row/series it reproduces and
appends it to ``benchmarks/results/results.json`` so EXPERIMENTS.md can
be regenerated from measured numbers.
"""

import json
import random
from pathlib import Path

import pytest

from repro.nlp import EntityRecognizer
from repro.websim.scenario import generate_report_content, make_scenarios

RESULTS_PATH = Path(__file__).parent / "results" / "results.json"


def record_result(experiment: str, payload: dict) -> None:
    """Persist one experiment's measured series."""
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[experiment] = payload
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True))


@pytest.fixture(scope="session")
def trained_crf() -> EntityRecognizer:
    """The benchmark-grade CRF (trained once per session, ~40s)."""
    scenarios = make_scenarios(40, seed=11, known_only=True)
    texts = []
    for scenario in scenarios:
        for k in range(3):
            content = generate_report_content(
                scenario,
                random.Random(f"{scenario.scenario_id}-{k}"),
                sentence_count=8,
            )
            texts.append(" ".join(gs.text for gs in content.truth.sentences))
    return EntityRecognizer.train(texts, max_iterations=80)


@pytest.fixture(scope="session")
def heldout_contents():
    """Held-out evaluation reports (names outside the curated lists)."""
    scenarios = make_scenarios(15, seed=99)
    return [
        generate_report_content(
            s, random.Random(f"test-{s.scenario_id}"), sentence_count=8
        )
        for s in scenarios
    ]
