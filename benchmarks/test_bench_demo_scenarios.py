"""E12/E13 -- the demonstration outline (paper section 3).

Scenario 1 ("wannacry"): keyword search, detailed display, dragging,
layout, expansion/collapse, ending with a subgraph of all relevant
entities.  Scenario 2 ("cozyduke"): the actor's techniques and other
actors sharing them.  Scenario 3: the Cypher query
``match (n) where n.name = "..." return n`` returns the same node as
scenario 1.

The simulated corpus has its own threat names; the scenarios run
against its busiest malware/actor, exercising the same mechanics.
"""

from conftest import record_result

from repro import SecurityKG, SystemConfig
from repro.apps import ThreatSearchApp
from repro.ui import GraphExplorer, ViewConfig


def test_bench_demo_scenarios(benchmark):
    kg = SecurityKG(
        SystemConfig(
            scenario_count=15, reports_per_site=5, connectors=["graph", "search"]
        )
    )
    kg.run_once()
    kg.run_fusion()
    app = ThreatSearchApp(kg)

    malware = max(kg.graph.nodes("Malware"), key=lambda n: kg.graph.degree(n.node_id))
    actor = max(
        kg.graph.nodes("ThreatActor"), key=lambda n: kg.graph.degree(n.node_id)
    )
    malware_name = str(malware.properties["name"])
    actor_name = str(actor.properties["name"])

    # -- scenario 1: keyword investigation + UI interactions
    investigation = benchmark.pedantic(
        app.investigate, args=(malware_name,), rounds=1, iterations=1
    )
    explorer = GraphExplorer(kg.graph, ViewConfig(max_nodes=50, max_neighbors=15))
    explorer.show([investigation.focus.node_id])
    spawned = explorer.expand(investigation.focus.node_id)
    view = explorer.snapshot()
    dragged = view["nodes"][1]["id"]
    explorer.drag(dragged, 5.0, 5.0)
    explorer.toggle(investigation.focus.node_id)  # collapse
    collapsed_size = len(explorer.snapshot()["nodes"])
    explorer.back()
    restored_size = len(explorer.snapshot()["nodes"])

    # -- scenario 2: actor techniques + sharing actors
    techniques = app.techniques_of(actor_name)
    sharing = app.actors_sharing_techniques(actor_name)

    # -- scenario 3: Cypher equivalence
    cypher_node = app.cypher_lookup(malware_name)
    same_node = (
        cypher_node is not None
        and cypher_node.node_id == investigation.focus.node_id
    )

    print("\nE12/E13: demonstration scenarios")
    print(f"  scenario 1: search {malware_name!r} -> "
          f"{len(investigation.reports)} reports, focus node "
          f"{investigation.focus.node_id}, "
          f"{sum(len(v) for v in investigation.related.values())} related entities")
    print(f"    expand spawned {len(spawned)} neighbours; drag pinned node "
          f"{dragged}; collapse -> {collapsed_size} node(s); back -> "
          f"{restored_size} nodes")
    print(f"  scenario 2: {actor_name!r} uses {len(techniques)} techniques "
          f"({', '.join(techniques[:3])}...); "
          f"{len(sharing)} other actor(s) share techniques")
    print(f"  scenario 3: cypher 'match (n) where n.name = \"{malware_name}\" "
          f"return n' -> same node as keyword search: {same_node}")

    record_result(
        "E12_E13",
        {
            "scenario1": {
                "query": malware_name,
                "reports": len(investigation.reports),
                "related_entities": sum(
                    len(v) for v in investigation.related.values()
                ),
                "spawned": len(spawned),
                "collapsed_to": collapsed_size,
                "restored_to": restored_size,
            },
            "scenario2": {
                "actor": actor_name,
                "techniques": techniques,
                "sharing": sharing[:5],
            },
            "scenario3_same_node": same_node,
        },
    )
    assert investigation.reports and investigation.related
    assert spawned and collapsed_size < restored_size
    assert techniques
    assert same_node
