"""E22 -- web preemption: short-query latency under a mixed storm.

The claim behind the preemptable executor: when many analysts share one
query endpoint, time-slicing long scans keeps short interactive queries
fast, where run-to-completion scheduling makes them wait behind every
long query queued ahead of them.

Model (all on the virtual clock, so the run is deterministic and takes
milliseconds of real time):

- one server, one worker: queries execute one safe-point tick at a
  time, each tick charging ``STEP_COST`` virtual seconds;
- a storm of LONG cartesian-product scans and SHORT index lookups all
  arrives at t=0, interleaved so every short query has long queries
  queued ahead of it;
- **eager** scheduling runs each query to completion in arrival order;
- **preemptable** scheduling round-robins the same tasks with a
  ``QUANTUM`` virtual-second slice.

Reported: p95 (and mean) short-query latency for both schedulers plus
the slice/suspension profile, appended to results.json for
EXPERIMENTS.md.  The acceptance bar is a >= 3x p95 improvement.
"""

from conftest import record_result

from repro.graphdb import CypherEngine, PropertyGraph
from repro.graphdb.cypher.iterators import ExecutionContext
from repro.obs import make_obs
from repro.runtime.clock import VirtualClock

#: virtual seconds charged per executor safe-point tick
STEP_COST = 0.0001
#: preemptable slice budget in virtual seconds (~50 ticks)
QUANTUM = 0.005

MALWARE_COUNT = 100
LONG_QUERY = "MATCH (a:Malware), (b:Malware) RETURN count(*) AS pairs"
SHORT_QUERIES = [
    f'MATCH (m:Malware {{name: "mal-{i:04d}"}}) RETURN m.name'
    for i in range(40)
]
LONG_COUNT = 5


def build_graph() -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(MALWARE_COUNT):
        graph.create_node("Malware", {"name": f"mal-{i:04d}"})
    return graph


def storm_queries() -> list[tuple[str, str]]:
    """(kind, query) arrival order: longs spread through the shorts."""
    arrivals: list[tuple[str, str]] = []
    shorts = iter(SHORT_QUERIES)
    per_gap = len(SHORT_QUERIES) // LONG_COUNT
    for _ in range(LONG_COUNT):
        arrivals.append(("long", LONG_QUERY))
        for _ in range(per_gap):
            arrivals.append(("short", next(shorts)))
    arrivals.extend(("short", q) for q in shorts)
    return arrivals


def percentile(values: list[float], fraction: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(round(fraction * (len(ranked) - 1))))
    return ranked[index]


def run_eager(arrivals) -> dict[str, list[float]]:
    """Run-to-completion in arrival order; latency = completion time."""
    clock = VirtualClock()
    engine = CypherEngine(build_graph())
    latencies: dict[str, list[float]] = {"short": [], "long": []}
    for kind, query in arrivals:
        context = ExecutionContext(clock=clock, step_cost=STEP_COST)
        engine.task(query, context=context, strict=False).run_to_completion()
        latencies[kind].append(clock.now())
    return latencies


def run_preemptable(arrivals):
    """Round-robin with a quantum; latency = completion time."""
    clock = VirtualClock()
    obs = make_obs(clock)
    engine = CypherEngine(build_graph(), obs=obs)
    tasks = [
        (
            kind,
            engine.task(
                query,
                context=ExecutionContext(
                    clock=clock, quantum=QUANTUM, step_cost=STEP_COST
                ),
                strict=False,
            ),
        )
        for kind, query in arrivals
    ]
    latencies: dict[str, list[float]] = {"short": [], "long": []}
    pending = list(tasks)
    while pending:
        still = []
        for kind, task in pending:
            task.step()
            if task.done:
                latencies[kind].append(clock.now())
            else:
                still.append((kind, task))
        pending = still
    counters = obs.metrics.snapshot()["counters"]
    profile = {
        "slices": sum(counters.get("cypher.slices", {}).values()),
        "suspended": sum(counters.get("cypher.suspended", {}).values()),
    }
    return latencies, profile


def test_bench_preemption_storm():
    arrivals = storm_queries()
    eager = run_eager(arrivals)
    preemptable, profile = run_preemptable(arrivals)

    assert len(eager["short"]) == len(preemptable["short"]) == len(SHORT_QUERIES)
    assert len(eager["long"]) == len(preemptable["long"]) == LONG_COUNT

    eager_p95 = percentile(eager["short"], 0.95)
    preempt_p95 = percentile(preemptable["short"], 0.95)
    speedup = eager_p95 / preempt_p95

    payload = {
        "workload": {
            "short_queries": len(SHORT_QUERIES),
            "long_queries": LONG_COUNT,
            "malware_nodes": MALWARE_COUNT,
            "step_cost_s": STEP_COST,
            "quantum_s": QUANTUM,
        },
        "eager": {
            "short_p95_s": round(eager_p95, 4),
            "short_mean_s": round(
                sum(eager["short"]) / len(eager["short"]), 4
            ),
            "long_p95_s": round(percentile(eager["long"], 0.95), 4),
        },
        "preemptable": {
            "short_p95_s": round(preempt_p95, 4),
            "short_mean_s": round(
                sum(preemptable["short"]) / len(preemptable["short"]), 4
            ),
            "long_p95_s": round(percentile(preemptable["long"], 0.95), 4),
            "profile": profile,
        },
        "short_p95_speedup": round(speedup, 1),
    }
    record_result("E22", payload)
    print(
        f"\nE22 mixed storm: short p95 eager {eager_p95:.3f}s vs "
        f"preemptable {preempt_p95:.3f}s ({speedup:.1f}x better), "
        f"{profile['slices']} slices / {profile['suspended']} suspensions"
    )

    # the whole point of the refactor: >= 3x better short-query p95
    assert speedup >= 3.0
    # preemption must not lose work: every query still completes, and
    # the long queries pay only bounded overhead for the sharing
    assert profile["suspended"] > 0


def test_bench_preemption_results_identical():
    """The storm changes scheduling only: results match eager exactly."""
    engine = CypherEngine(build_graph())
    clock = VirtualClock()
    for _kind, query in storm_queries()[:12]:
        eager_rows = engine.run(query, strict=False)
        task = engine.task(
            query,
            context=ExecutionContext(
                clock=clock, quantum=QUANTUM, step_cost=STEP_COST
            ),
            strict=False,
        )
        sliced_rows = task.run_to_completion()
        assert [r.values for r in sliced_rows] == [
            r.values for r in eager_rows
        ]
