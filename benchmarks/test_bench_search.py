"""E10 -- the two search paths of the UI (paper section 2.6).

Claim: "the user can search information using keywords (through
Elasticsearch) or Cypher queries (through Neo4j Cypher engine)".

Reproduction: over an ingested corpus, measure keyword-search quality
(does the top hit actually concern the queried threat?) and latency,
and Cypher query latency across representative query shapes.
"""

import time

from conftest import record_result

from repro import SecurityKG, SystemConfig


def test_bench_search_paths(benchmark):
    kg = SecurityKG(
        SystemConfig(
            scenario_count=20, reports_per_site=6, connectors=["graph", "search"]
        )
    )
    kg.run_once()

    malware_names = [
        str(n.properties["name"]) for n in kg.graph.nodes("Malware")
    ]

    # keyword relevance: for each malware, does the top report mention it?
    relevant = 0
    latencies = []
    for name in malware_names:
        started = time.perf_counter()
        hits = kg.keyword_search(name, limit=5)
        latencies.append(time.perf_counter() - started)
        top_text = " ".join(hits[0].fields.values()).lower() if hits else ""
        if name.lower() in top_text:
            relevant += 1
    precision_at_1 = relevant / len(malware_names)
    keyword_ms = 1000 * sum(latencies) / len(latencies)

    benchmark.pedantic(
        kg.keyword_search, args=(malware_names[0],), rounds=10, iterations=1
    )

    cypher_queries = [
        f'match (n) where n.name = "{malware_names[0]}" return n',
        "MATCH (m:Malware)-[:CONNECTS_TO]->(x) RETURN m.name, x.name",
        "MATCH (a:ThreatActor)-[:USES]->(t:Technique) "
        "RETURN a.name, count(t) AS c ORDER BY c DESC LIMIT 5",
        "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t) RETURN m.name, t.name",
    ]
    cypher_rows = []
    for query in cypher_queries:
        started = time.perf_counter()
        rows = kg.cypher(query)
        elapsed_ms = 1000 * (time.perf_counter() - started)
        cypher_rows.append(
            {"query": query[:60], "rows": len(rows), "ms": round(elapsed_ms, 2)}
        )

    print("\nE10: keyword search (Elasticsearch path) + Cypher (Neo4j path)")
    print(
        f"  keyword: precision@1 {precision_at_1:.2f} over "
        f"{len(malware_names)} threat queries, mean latency {keyword_ms:.2f} ms"
    )
    print(f"  {'cypher query':<62} {'rows':>5} {'ms':>8}")
    for row in cypher_rows:
        print(f"  {row['query']:<62} {row['rows']:>5} {row['ms']:>8}")

    record_result(
        "E10",
        {
            "keyword_precision_at_1": round(precision_at_1, 3),
            "keyword_mean_ms": round(keyword_ms, 3),
            "cypher": cypher_rows,
        },
    )
    assert precision_at_1 >= 0.9
    assert keyword_ms < 100
    assert all(row["rows"] > 0 for row in cypher_rows)
