"""E14 -- connector interchangeability (paper section 2.1).

Claim: the modular design lets components with the same interface be
swapped -- "SecurityKG by default uses a Neo4j connector ... if the
user cares less about multi-hop relations, he may switch to a RDBMS
using a SQL connector".

Reproduction: drive the identical record batch through the graph and
SQL connectors; verify node/row parity per label and compare ingest
timings plus the query each backend is good at (multi-hop traversal vs
flat aggregation).
"""

import time

from conftest import record_result

from repro.connectors import GraphConnector, SQLConnector
from repro.core import Checker, Extractor, ParserDispatch, Porter
from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.graphdb import CypherEngine
from repro.websim import SimulatedTransport, build_default_web


def build_records():
    web = build_default_web(scenario_count=15, reports_per_site=4)
    engine = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=0.0)),
        num_threads=8,
    )
    ported = Porter().port(engine.crawl().documents)
    passed = Checker().filter(ported).passed
    records = ParserDispatch().parse_all(passed)
    extractor = Extractor()
    return [extractor.extract(r) for r in records]


def test_bench_connector_parity(benchmark):
    records = build_records()

    graph_connector = GraphConnector()
    started = time.perf_counter()
    graph_connector.ingest(records)
    graph_seconds = time.perf_counter() - started

    sql_connector = SQLConnector()
    started = time.perf_counter()
    benchmark.pedantic(sql_connector.ingest, args=(records,), rounds=1, iterations=1)
    sql_seconds = time.perf_counter() - started

    graph_labels = graph_connector.graph.label_counts()
    sql_labels = sql_connector.label_counts()

    # multi-hop query on the graph backend
    engine = CypherEngine(graph_connector.graph)
    started = time.perf_counter()
    multi_hop = engine.run(
        "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t) "
        "RETURN m.name, t.name"
    )
    cypher_ms = 1000 * (time.perf_counter() - started)

    # flat aggregation on the SQL backend
    started = time.perf_counter()
    rows = sql_connector.connection.execute(
        "SELECT label, COUNT(*) FROM entities GROUP BY label"
    ).fetchall()
    sql_ms = 1000 * (time.perf_counter() - started)

    print("\nE14: connector interchangeability "
          f"({len(records)} records through both backends)")
    print(f"  node/row parity per label: {graph_labels == sql_labels}")
    print(f"  graph ingest: {graph_seconds:.2f}s; "
          f"entities {graph_connector.graph.node_count}, "
          f"relations {graph_connector.graph.edge_count}")
    print(f"  sql ingest: {sql_seconds:.2f}s; "
          f"entities {sql_connector.entity_count()}, "
          f"relations {sql_connector.relation_count()}")
    print(f"  multi-hop Cypher (graph backend): {len(multi_hop)} rows in "
          f"{cypher_ms:.1f} ms")
    print(f"  aggregation SQL (RDBMS backend): {len(rows)} rows in "
          f"{sql_ms:.2f} ms")

    record_result(
        "E14",
        {
            "records": len(records),
            "parity": graph_labels == sql_labels,
            "graph_nodes": graph_connector.graph.node_count,
            "sql_entities": sql_connector.entity_count(),
            "graph_ingest_s": round(graph_seconds, 3),
            "sql_ingest_s": round(sql_seconds, 3),
            "multi_hop_rows": len(multi_hop),
            "multi_hop_ms": round(cypher_ms, 2),
        },
    )
    assert graph_labels == sql_labels
    assert graph_connector.graph.node_count == sql_connector.entity_count()
    assert multi_hop
