"""E19 -- observability overhead budget and trace determinism.

OBSERVABILITY.md promises the instrumented system costs (near) nothing
when observability is off: every pipeline stage always runs under a
span context (enforced by the ``obs/untraced-stage`` lint rule), but
the default tracer/metrics are shared no-op singletons.

Reproduction: run the E3 processing pipeline three ways over the same
crawl batch -- (a) a pre-observability variant whose stage runner has
no span at all, (b) the instrumented pipeline with the default no-op
bundle, (c) the instrumented pipeline with live tracing + metrics --
and assert (b) stays within the 2% budget of (a).  Then re-check the
golden-trace property end-to-end: two seeded virtual-clock systems
must export byte-identical traces.
"""

from conftest import record_result

from repro import SecurityKG, SystemConfig
from repro.core import Checker, Extractor, ParserDispatch, Porter
from repro.core.pipeline import Pipeline, Stage
from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.obs import make_obs
from repro.runtime import VirtualClock, clock_from_name
from repro.websim import SimulatedTransport, build_default_web

ROUNDS = 5
BUDGET_PCT = 2.0
#: Absolute noise floor (seconds): on a batch this small, scheduler
#: jitter can exceed 2% of a sub-second elapsed time.
NOISE_FLOOR_S = 0.05


class UntracedPipeline(Pipeline):
    """The pre-observability stage runner: no span, no metrics."""

    def _run_stage(self, stage, decoder, item, parent):
        if decoder is not None:
            item = decoder.decode(item)
        result = stage.fn(item)
        if result is not None and stage.codec is not None:
            result = stage.codec.encode(result)
        return result


def build_reports():
    web = build_default_web(scenario_count=12, reports_per_site=3)
    engine = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=1.0, clock=VirtualClock())),
        num_threads=8,
    )
    return Porter().port(engine.crawl().documents)


def make_pipeline(pipeline_cls=Pipeline, obs=None):
    checker = Checker()
    parsers = ParserDispatch()
    extractor = Extractor(obs=obs)
    return pipeline_cls(
        [
            Stage(
                "check",
                lambda r: r if checker.why_rejected(r) is None else None,
                workers=1,
            ),
            Stage("parse", parsers.parse, workers=4),
            Stage("extract", extractor.extract, workers=4),
        ],
        obs=obs,
    )


def best_of(factories, reports, rounds=ROUNDS):
    """Min elapsed per variant, rounds interleaved so drift (thermal,
    container neighbours) hits every variant equally."""
    best = [None] * len(factories)
    outputs = [None] * len(factories)
    for factory in factories:  # warmup: lazy imports, allocator
        factory().run(reports)
    for _ in range(rounds):
        for index, factory in enumerate(factories):
            result = factory().run(reports)
            if best[index] is None or result.elapsed < best[index]:
                best[index] = result.elapsed
                outputs[index] = len(result.outputs)
    return best, outputs


def run_traced_system():
    clock = clock_from_name("virtual")
    obs = make_obs(clock)
    kg = SecurityKG(
        SystemConfig(scenario_count=5, reports_per_site=2, clock="virtual"),
        clock=clock,
        obs=obs,
    )
    kg.run_once()
    return obs.tracer.export_jsonl()


def test_bench_observability(benchmark):
    reports = build_reports()

    (untraced_s, noop_s, live_s), (untraced_out, noop_out, live_out) = best_of(
        [
            lambda: make_pipeline(UntracedPipeline),
            lambda: make_pipeline(Pipeline),
            lambda: make_pipeline(Pipeline, obs=make_obs()),
        ],
        reports,
    )
    benchmark.pedantic(
        make_pipeline(Pipeline).run, args=(reports,), rounds=1, iterations=1
    )

    overhead_pct = (noop_s / untraced_s - 1.0) * 100
    live_pct = (live_s / untraced_s - 1.0) * 100
    first, second = run_traced_system(), run_traced_system()
    deterministic = first == second and len(first) > 0

    print(f"\nE19: observability overhead ({len(reports)} reports, "
          f"check->parse->extract, best of {ROUNDS})")
    print(f"  {'variant':<22} {'elapsed (s)':>12} {'vs untraced':>12}")
    print(f"  {'untraced pipeline':<22} {untraced_s:>12.3f} {'--':>12}")
    print(f"  {'no-op obs (default)':<22} {noop_s:>12.3f} "
          f"{overhead_pct:>+11.1f}%")
    print(f"  {'live trace+metrics':<22} {live_s:>12.3f} "
          f"{live_pct:>+11.1f}%")
    print(f"  virtual-clock trace byte-identical across runs: {deterministic}")

    record_result(
        "E19",
        {
            "untraced_s": round(untraced_s, 4),
            "noop_s": round(noop_s, 4),
            "live_s": round(live_s, 4),
            "noop_overhead_pct": round(overhead_pct, 2),
            "live_overhead_pct": round(live_pct, 2),
            "budget_pct": BUDGET_PCT,
            "trace_deterministic": deterministic,
        },
    )

    assert untraced_out == noop_out == live_out
    assert deterministic
    # The budget: disabled observability must be invisible in E3-style
    # throughput (with an absolute floor for sub-second noise).
    assert (
        overhead_pct <= BUDGET_PCT or (noop_s - untraced_s) <= NOISE_FLOOR_S
    ), f"no-op observability costs {overhead_pct:+.1f}%"
