"""E16 (extension) -- knowledge-enhanced threat protection.

The paper's future work: "connect SecurityKG to our system-auditing-
based threat protection systems to achieve knowledge-enhanced threat
protection."  This benchmark quantifies the enhancement on a simulated
enterprise audit stream (3 real intrusions + coincidental indicator
matches in benign noise):

* detection recall -- identical for KG hunter and flat feed (matching
  is matching);
* *attribution* -- only the KG names the threat behind each alert;
* *false-positive suppression* -- incident-level confirmation demands
  corroborating IOC kinds, which coincidences lack;
* *hunt-forward* -- confirmed incidents list the threat's remaining
  known infrastructure.
"""

from conftest import record_result

from repro import SecurityKG, SystemConfig
from repro.apps.threat_hunting import IocFeedHunter, ThreatHunter
from repro.audit import simulate


def test_bench_threat_hunting(benchmark):
    kg = SecurityKG(
        SystemConfig(scenario_count=12, reports_per_site=4, connectors=["graph"])
    )
    kg.run_once()
    log = simulate(
        kg.web.scenarios, attacks=3, benign_events=600,
        contamination_per_scenario=2,
    )
    attack_ids = log.attack_event_ids

    hunter = ThreatHunter(kg.graph)
    incidents = benchmark.pedantic(hunter.hunt, args=(log.events,), rounds=1,
                                   iterations=1)
    alerts = hunter.scan(log.events)
    feed_alerts = IocFeedHunter.from_graph(kg.graph).scan(log.events)

    def recall(alert_ids):
        return len(alert_ids & attack_ids) / len(attack_ids)

    kg_recall = recall({a.event.event_id for a in alerts})
    feed_recall = recall({a.event.event_id for a in feed_alerts})
    attributed_pct = sum(1 for a in alerts if a.attributed_to) / len(alerts)

    confirmed = [i for i in incidents if i.confirmed]
    confirmed_truth = [
        {log.truth_for(a.event.event_id).label for a in i.alerts}
        for i in confirmed
    ]
    confirmed_real = sum(1 for labels in confirmed_truth if "attack" in labels)
    contaminated_alerts = [
        a for a in feed_alerts
        if log.truth_for(a.event.event_id).label == "contaminated"
    ]
    hunt_forward = sum(len(i.related_iocs) for i in confirmed)

    print("\nE16 (extension): knowledge-enhanced threat protection")
    print(f"  {'':<28} {'KG hunter':>10} {'flat feed':>10}")
    print(f"  {'attack-event recall':<28} {kg_recall:>10.2f} {feed_recall:>10.2f}")
    print(f"  {'alerts attributed':<28} {attributed_pct:>9.0%} {'0%':>10}")
    print(f"  {'incident correlation':<28} {'yes':>10} {'no':>10}")
    print(
        f"  confirmed incidents: {len(confirmed)} "
        f"({confirmed_real} backed by real attacks, "
        f"{len(confirmed) - confirmed_real} false)"
    )
    print(
        f"  coincidental matches: suppressed below confirmation by the KG "
        f"hunter; {len(contaminated_alerts)} raw false alerts on the flat feed"
    )
    print(f"  hunt-forward indicators offered: {hunt_forward}")

    record_result(
        "E16",
        {
            "kg_recall": round(kg_recall, 3),
            "feed_recall": round(feed_recall, 3),
            "alerts_attributed_pct": round(attributed_pct, 3),
            "confirmed_incidents": len(confirmed),
            "confirmed_backed_by_attacks": confirmed_real,
            "flat_feed_false_alerts": len(contaminated_alerts),
            "hunt_forward_indicators": hunt_forward,
        },
    )
    assert kg_recall == 1.0 and feed_recall == 1.0
    assert attributed_pct > 0.9
    assert confirmed and confirmed_real == len(confirmed)
    assert contaminated_alerts  # the flat feed pays the FP cost
    assert hunt_forward > 0
