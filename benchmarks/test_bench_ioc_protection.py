"""E6 -- ablation: IOC protection (paper section 2.4).

Claim: security-context nuances (dots, underscores, backslashes inside
IOCs) "limit the performance of most NLP modules (e.g., sentence
segmentation, tokenization)"; IOC protection guarantees "that the
potential entities are complete tokens".

Reproduction: tokenize held-out reports with protection on and off and
measure (a) how many gold IOC strings survive as single complete
tokens, and (b) IOC extraction F1 when each *token* is classified by
the IOC recognisers -- the situation any token-level extractor (CRF
included) faces.  Expected shape: protection keeps every IOC intact;
naive tokenization shreds most of them and extraction quality
collapses to the few IOC kinds that happen to survive as single tokens
(hashes, CVE ids).
"""

from conftest import record_result

from repro.nlp import classify_ioc, evaluate_entities
from repro.nlp.tokenize import tokenize_sentences
from repro.ontology import EntityType


def gold_ioc_strings(content):
    return [
        (m.text, m.type)
        for gs in content.truth.sentences
        for m in gs.mentions
        if m.type.is_ioc or m.type == EntityType.VULNERABILITY
    ]


def token_level_iocs(sentences):
    """IOC mentions recoverable by classifying individual tokens."""
    found = []
    for sentence in sentences:
        for token in sentence.tokens:
            if token.is_ioc:
                found.append((token.text, token.ioc_type))
                continue
            kind = classify_ioc(token.text)
            if kind is not None:
                found.append((token.text, kind))
    return found


def test_bench_ioc_protection(benchmark, heldout_contents):
    rows = []
    for protect in (True, False):
        intact = total = 0
        predicted, gold = [], []
        for content in heldout_contents:
            text = " ".join(gs.text for gs in content.truth.sentences)
            sentences = tokenize_sentences(text, protect_iocs=protect)
            token_texts = {
                token.text for sentence in sentences for token in sentence.tokens
            }
            for value, _kind in gold_ioc_strings(content):
                total += 1
                if value in token_texts:
                    intact += 1
            predicted += token_level_iocs(sentences)
            gold += gold_ioc_strings(content)
        evaluation = evaluate_entities(predicted, gold)
        rows.append(
            {
                "protection": protect,
                "ioc_tokens_intact_pct": round(100 * intact / total, 1),
                "ioc_f1": round(evaluation.micro.f1, 3),
                "by_type_f1": {
                    t.value: round(prf.f1, 2)
                    for t, prf in sorted(
                        evaluation.by_type.items(), key=lambda kv: kv[0].value
                    )
                },
            }
        )

    benchmark.pedantic(
        tokenize_sentences,
        args=(" ".join(gs.text for gs in heldout_contents[0].truth.sentences),),
        rounds=5,
        iterations=1,
    )

    print("\nE6: IOC protection ablation (token-level extraction)")
    print(f"  {'protection':<12} {'IOC tokens intact':>18} {'IOC F1':>8}")
    for row in rows:
        print(
            f"  {str(row['protection']):<12} "
            f"{row['ioc_tokens_intact_pct']:>17}% {row['ioc_f1']:>8}"
        )
    naive_by_type = rows[1]["by_type_f1"]
    survivors = {k: v for k, v in naive_by_type.items() if v > 0.5}
    print(f"  without protection only single-token kinds survive: {survivors}")
    print("  (multi-part IOCs -- IPs, URLs, domains, paths, registry keys, "
          "emails -- are shredded by generic tokenization)")

    record_result("E6", {"rows": rows})

    protected, naive = rows
    assert protected["ioc_tokens_intact_pct"] > 99.0
    assert naive["ioc_tokens_intact_pct"] < 30.0
    assert protected["ioc_f1"] > 0.95
    assert naive["ioc_f1"] < 0.6
    # the paper's named failure mode: dotted IOCs break without protection
    assert naive_by_type.get("IP", 0.0) == 0.0
    assert naive_by_type.get("URL", 0.0) == 0.0
