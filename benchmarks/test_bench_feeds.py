"""E23 -- dissemination feeds: incremental pulls + conditional GETs.

The claim to quantify: serving TLP-tiered STIX feeds with
journal-cursor deltas and ETag conditional GETs cuts the bytes a
polling client population downloads by **>= 10x** versus the naive
strategy of shipping the full bundle on every poll.

Setup: a seeded 50-client poll storm against the HTTP feed API
(:class:`repro.ui.server.ExplorerAPI`) on the virtual clock.  Clients
are spread across the three tiers (partner/internal authenticate with
API keys), remember their ETag + cursor between polls, and poll for 20
rounds; the graph mutates on three of those rounds (two incremental
crawls and one fusion pass), so most polls see an unchanged feed and
the rest see a small delta.  The naive baseline is the compact-encoded
full bundle for the same tier at the same instant, once per poll.

Also reported: the conditional-GET hit ratio straight from the
``feeds.cache_hits`` / ``feeds.pulls`` counters, and an end-of-storm
correctness check that every client's replayed object map matches a
fresh full pull byte-for-byte.
"""

import json
import random

from conftest import record_result

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.feeds import TIERS
from repro.obs import make_obs
from repro.runtime import clock_from_name
from repro.ui.server import ExplorerAPI

CLIENTS = 50
ROUNDS = 20
#: rounds immediately preceded by a graph mutation; the crawls widen
#: the article budget so each one actually ingests new reports
MUTATE_BEFORE = {3: "crawl-6", 7: "crawl-all", 9: "fuse"}

KEYS = {"partner": "partner-key", "internal": "internal-key"}

WORKLOAD = dict(
    scenario_count=8,
    reports_per_site=2,
    sources=["ThreatPedia", "MalwareBulletin", "MalwareVault"],
    connectors=["graph", "search"],
    clock="virtual",
    seed=7,
)


def compact_bytes(payload) -> int:
    return len(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )


def apply_pull(state: dict, payload: dict) -> dict:
    if payload["mode"] == "full":
        return {o["id"]: o for o in payload["bundle"]["objects"]}
    for stix_object in payload["objects"]:
        state[stix_object["id"]] = stix_object
    for deleted_id in payload["deleted"]:
        state.pop(deleted_id, None)
    return state


def test_bench_feed_poll_storm():
    obs = make_obs(clock_from_name("virtual"))
    kg = SecurityKG(
        SystemConfig(feed_keys=dict(KEYS), **WORKLOAD), obs=obs
    )
    kg.run_once(max_articles=3)
    api = ExplorerAPI(kg)

    rng = random.Random(4242)
    clients = [
        {"tier": TIERS[index % len(TIERS)], "etag": None, "cursor": None,
         "state": {}}
        for index in range(CLIENTS)
    ]

    naive_bytes = 0
    incremental_bytes = 0
    rows = []
    for round_index in range(ROUNDS):
        mutation = MUTATE_BEFORE.get(round_index)
        if mutation == "crawl-6":
            kg.run_once(max_articles=6)
        elif mutation == "crawl-all":
            kg.run_once()
        elif mutation == "fuse":
            kg.run_fusion()

        # the naive baseline re-downloads this, once per poll
        full_cost = {
            tier: compact_bytes(kg.feeds.full_bundle(tier)[0])
            for tier in TIERS
        }

        round_naive = round_incremental = 0
        for client in clients:
            if round_index and rng.random() < 0.2:
                continue  # this client sits the round out
            tier = client["tier"]
            path = f"/feeds/{tier}"
            if client["cursor"]:
                path += f"?cursor={client['cursor']}"
            headers = {}
            if client["etag"]:
                headers["If-None-Match"] = client["etag"]
            if tier in KEYS:
                headers["X-API-Key"] = KEYS[tier]
            status, payload, headers_out = api.handle_full(
                "GET", path, headers=headers
            )
            assert status in (200, 304)
            round_naive += full_cost[tier]
            if status == 200:
                round_incremental += compact_bytes(payload)
                client["state"] = apply_pull(client["state"], payload)
                client["etag"] = headers_out["ETag"]
                client["cursor"] = headers_out["X-Feed-Cursor"]
        naive_bytes += round_naive
        incremental_bytes += round_incremental
        rows.append(
            {
                "round": round_index,
                "mutation": mutation or "-",
                "naive_bytes": round_naive,
                "incremental_bytes": round_incremental,
            }
        )

    # every client's replayed map must equal a fresh full pull
    fresh = {
        tier: {
            o["id"]: o
            for o in kg.feeds.pull(tier).payload["bundle"]["objects"]
        }
        for tier in TIERS
    }
    for client in clients:
        assert client["state"] == fresh[client["tier"]]

    counters = obs.metrics.snapshot()["counters"]
    pulls = sum(counters["feeds.pulls"].values())
    cache_hits = sum(counters["feeds.cache_hits"].values())
    hit_ratio = cache_hits / (pulls + cache_hits)
    reduction = naive_bytes / incremental_bytes

    print(f"\nE23: feed poll storm ({CLIENTS} clients, {ROUNDS} rounds, "
          f"{len(MUTATE_BEFORE)} mutations)")
    print(f"  {'round':>5} {'mutation':>8} {'naive B':>10} "
          f"{'incremental B':>14}")
    for row in rows:
        print(f"  {row['round']:>5} {row['mutation']:>8} "
              f"{row['naive_bytes']:>10} {row['incremental_bytes']:>14}")
    print(f"  total naive        : {naive_bytes:>12} B")
    print(f"  total incremental  : {incremental_bytes:>12} B")
    print(f"  bytes reduction    : {reduction:>12.1f}x")
    print(f"  conditional-GET hit: {hit_ratio:>12.2%} "
          f"({cache_hits} of {pulls + cache_hits} polls)")

    assert reduction >= 10.0
    assert hit_ratio >= 0.5

    record_result(
        "E23",
        {
            "claim": "cursor deltas + ETag conditional GETs cut polled "
            "feed bytes >= 10x versus full-bundle downloads",
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "naive_bytes": naive_bytes,
            "incremental_bytes": incremental_bytes,
            "reduction_x": round(reduction, 1),
            "conditional_get_hit_ratio": round(hit_ratio, 3),
            "polls": pulls + cache_hits,
            "cache_hits": cache_hits,
            "per_round": rows,
        },
    )
