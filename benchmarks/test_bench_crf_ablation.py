"""E17 (extension) -- CRF feature ablation.

The paper motivates its feature set explicitly: "To train the CRF
model, we use features such as word lemmas, pos tags, and word
embeddings.  Since our model has the ability to leverage token-level
semantics, it can outperform a naive entity recognition solution."

This ablation retrains the recogniser with each feature family (and
the identity-feature dropout of this implementation) removed, and
measures held-out F1 overall and on names absent from the curated
lists.  Expected shape: the full model wins; removing dropout
devastates *unseen-name* recall specifically (the model memorises
gazetteer hits); removing context impairs generalisation; embeddings
and gazetteer features contribute smaller margins.
"""

import random

from conftest import record_result

from repro.nlp import EntityRecognizer, evaluate_entities
from repro.ontology import EntityType
from repro.websim.scenario import generate_report_content, make_scenarios
from repro.websim.seeds import MALWARE_FAMILIES, THREAT_ACTORS, split_bank

VARIANTS: tuple[tuple[str, dict], ...] = (
    ("full", {}),
    ("no feature dropout", {"feature_dropout": 0.0}),
    ("no context window", {"context_window": 0}),
    ("no embeddings", {"use_embeddings": False}),
    ("no gazetteer features", {"use_gazetteer_features": False}),
)


def training_texts():
    scenarios = make_scenarios(30, seed=11, known_only=True)
    texts = []
    for scenario in scenarios:
        for k in range(2):
            content = generate_report_content(
                scenario,
                random.Random(f"{scenario.scenario_id}-{k}"),
                sentence_count=8,
            )
            texts.append(" ".join(gs.text for gs in content.truth.sentences))
    return texts


def unseen_recall(predicted, gold):
    unseen = set(split_bank(MALWARE_FAMILIES)[1]) | set(split_bank(THREAT_ACTORS)[1])
    gold_unseen = [
        (t, k)
        for t, k in gold
        if t.lower() in unseen
        and k in (EntityType.MALWARE, EntityType.THREAT_ACTOR)
    ]
    if not gold_unseen:
        return 0.0
    predicted_set = {(t.lower(), k) for t, k in predicted}
    return sum(
        1 for t, k in gold_unseen if (t.lower(), k) in predicted_set
    ) / len(gold_unseen)


def test_bench_crf_feature_ablation(benchmark, heldout_contents):
    texts = training_texts()
    rows = []
    for name, overrides in VARIANTS:
        recognizer = EntityRecognizer.train(texts, max_iterations=60, **overrides)
        predicted, gold = [], []
        for content in heldout_contents:
            text = " ".join(gs.text for gs in content.truth.sentences)
            _s, mentions = recognizer.extract(text)
            predicted += [(m.text, m.type) for m in mentions]
            gold += [
                (m.text, m.type)
                for gs in content.truth.sentences
                for m in gs.mentions
            ]
        evaluation = evaluate_entities(predicted, gold)
        rows.append(
            {
                "variant": name,
                "f1": round(evaluation.micro.f1, 3),
                "unseen_recall": round(unseen_recall(predicted, gold), 3),
            }
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nE17 (extension): CRF feature ablation")
    print(f"  {'variant':<24} {'micro-F1':>9} {'unseen-name recall':>19}")
    for row in rows:
        print(f"  {row['variant']:<24} {row['f1']:>9} {row['unseen_recall']:>19}")

    record_result("E17", {"rows": rows})

    by_name = {row["variant"]: row for row in rows}
    full = by_name["full"]
    assert full["f1"] >= max(row["f1"] for row in rows) - 0.01
    # dropout is what buys generalisation beyond the curated lists
    assert (
        full["unseen_recall"]
        > by_name["no feature dropout"]["unseen_recall"] + 0.3
    )
    # context features matter for unseen names too
    assert full["unseen_recall"] >= by_name["no context window"]["unseen_recall"]
