"""E5 -- relation-extraction quality (paper section 2.4).

Claim: the dependency-parsing-based relation extractor, extended to
relation verbs between CRF-recognised entities, contributes to the
"> 92% F1" extractor accuracy.

Reproduction: run the full pipeline (CRF mentions -> shallow
dependency parse -> SVO triples with ontology filtering) on held-out
reports and score triples against the generator's gold relations.
Also reported: the extractor with *gold* entity spans, isolating
relation-extraction quality from NER noise.
"""

from conftest import record_result

from repro.nlp import evaluate_relations
from repro.nlp.ner import EntitySpan
from repro.nlp.relation import RelationExtractor
from repro.nlp.tokenize import tokenize_sentences


def spans_from_gold(tokens, sentence):
    spans = []
    for mention in sentence.mentions:
        start = end = None
        for i, token in enumerate(tokens):
            if token.end > mention.start and token.start < mention.end:
                if start is None:
                    start = i
                end = i + 1
        if start is not None:
            spans.append(EntitySpan(start, end, mention.type, mention.text))
    return spans


def test_bench_relation_f1(benchmark, trained_crf, heldout_contents):
    extractor = RelationExtractor()

    def run(use_gold_spans: bool):
        predicted, gold = [], []
        for content in heldout_contents:
            for sentence in content.truth.sentences:
                parsed = tokenize_sentences(sentence.text)
                if not parsed:
                    continue
                tokens = parsed[0].tokens
                if use_gold_spans:
                    relations = extractor.extract(
                        tokens, spans_from_gold(tokens, sentence)
                    )
                else:
                    _s, mentions = trained_crf.extract(sentence.text)
                    relations = extractor.extract_with_mentions(tokens, mentions, 0)
                predicted += [(r.head_text, r.verb, r.tail_text) for r in relations]
                gold += [(r.head_text, r.verb, r.tail_text) for r in sentence.relations]
        return evaluate_relations(predicted, gold), len(predicted), len(gold)

    gold_spans_prf, _p1, _g1 = run(use_gold_spans=True)
    end_to_end_prf, n_pred, n_gold = benchmark.pedantic(
        run, args=(False,), rounds=1, iterations=1
    )

    print("\nE5: relation extraction on held-out reports")
    print(f"  {'setting':<22} {'P':>6} {'R':>6} {'F1':>6}")
    for name, prf in (
        ("gold entity spans", gold_spans_prf),
        ("end-to-end (CRF NER)", end_to_end_prf),
    ):
        print(f"  {name:<22} {prf.precision:>6.3f} {prf.recall:>6.3f} {prf.f1:>6.3f}")
    print(f"  triples: {n_pred} predicted vs {n_gold} gold")
    print("  paper claim: extractors > 92% F1 overall")

    record_result(
        "E5",
        {
            "gold_spans": {
                "precision": round(gold_spans_prf.precision, 3),
                "recall": round(gold_spans_prf.recall, 3),
                "f1": round(gold_spans_prf.f1, 3),
            },
            "end_to_end": {
                "precision": round(end_to_end_prf.precision, 3),
                "recall": round(end_to_end_prf.recall, 3),
                "f1": round(end_to_end_prf.f1, 3),
            },
        },
    )
    assert end_to_end_prf.f1 > 0.92
    assert gold_spans_prf.f1 >= end_to_end_prf.f1 - 0.05
