"""E20 -- health engine: determinism, overhead and quarantine recovery.

Three claims from OBSERVABILITY.md ("Health and alerting"):

1. **Determinism** -- under a virtual clock the health engine's
   verdicts (alerts, source states, transition history) are
   byte-identical across seeded runs, as is the trace containing its
   ``health.verdict`` spans.
2. **Overhead** -- running the engine online (window bookkeeping on
   every fetch span plus periodic rule sweeps) stays within a 2%
   budget of the same crawl without it, measured wall-clock on a
   real-clock crawl with latency disabled.
3. **Recovery** -- when one of four sources suffers a brownout (a gray
   failure: up, but failing), quarantine feedback recovers >= 80% of
   the healthy-source throughput of a clean run, and beats the same
   brownout crawled without feedback.
"""

from conftest import record_result

from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.obs import make_obs
from repro.obs.health import HealthEngine
from repro.runtime import REAL_CLOCK, VirtualClock
from repro.websim import Brownout, SimulatedTransport, build_default_web

#: Scheduler jitter on a sub-second CPU-bound crawl swamps the true
#: engine cost; the per-variant minimum needs this many rounds to
#: converge.
ROUNDS = 9
BUDGET_PCT = 2.0
#: Absolute noise floor (seconds): scheduler jitter on a sub-second
#: crawl can exceed 2% of elapsed time.
NOISE_FLOOR_S = 0.05
RECOVERY_FLOOR_PCT = 80.0

SOURCES = ["AdvisoryHub", "MalwareVault", "SecureListing", "ThreatPedia"]
SICK = "MalwareVault"
SICK_HOST = "malwarevault.example"
RULES = {
    "source-error-ratio": {"window": 10.0, "min_samples": 2},
    "source-fetch-latency": {"enabled": False},
}
#: Engine tuned to the simulated web's timescale (site latencies are
#: tens of milliseconds, so the default seconds-scale degraded pacing
#: would park a worker for entire virtual seconds per attempt).
ENGINE_KW = dict(
    interval=0.1,
    quarantine_after=1,
    probe_backoff_base=0.5,
    probe_backoff_max=4.0,
    probe_timeout=5.0,
    degraded_rate_multiplier=2.0,
    degraded_min_interval=0.05,
)


def build_web():
    # Detection is latency-bound: a failing fetch only enters the rule
    # window when its span *ends* (~2s with retries and backoff), so the
    # crawl must be long enough to amortise that burn-in or feedback
    # cannot separate itself from the unmanaged run.
    return build_default_web(scenario_count=12, reports_per_site=90)


def crawl(web, *, brownout=False, health=True, virtual=True):
    """One crawl of the four sources; returns (result, engine, obs, clock)."""
    clock = VirtualClock() if virtual else None
    obs = make_obs(clock)
    brownouts = (
        [Brownout(SICK_HOST, start=0.15, end=600.0)] if brownout else []
    )
    transport = SimulatedTransport(
        web,
        time_scale=1.0 if virtual else 0.0,
        clock=clock,
        brownouts=brownouts,
    )
    fetcher = Fetcher(transport, backoff=0.2, obs=obs)
    engine = None
    if health:
        engine = HealthEngine.from_config(
            RULES, clock=clock, obs=obs,
            start=(clock or REAL_CLOCK).now(), **ENGINE_KW
        )
        obs.tracer.on_finish = engine.observe_span
    crawler = CrawlEngine(
        build_all_crawlers(SOURCES), fetcher, num_threads=4,
        obs=obs, health=engine,
    )
    result = crawler.crawl()
    if engine is not None and clock is not None:
        engine.finalize(clock.now())
    return result, engine, obs, clock


def healthy_throughput(result):
    """Healthy-source pages per virtual second, measured to the instant
    the last healthy page landed (trailing sick-source probes idle the
    workers but do not slow healthy sources down)."""
    healthy = [d for d in result.documents if d.source != SICK]
    if not healthy:
        return 0.0
    end = max(d.fetched_at for d in healthy)
    return len(healthy) / end if end else 0.0


def best_of(thunks, rounds=ROUNDS):
    """Min elapsed per variant, rounds interleaved so drift hits all."""
    best = [None] * len(thunks)
    for thunk in thunks:  # warmup
        thunk()
    for _ in range(rounds):
        for index, thunk in enumerate(thunks):
            elapsed = thunk().elapsed
            if best[index] is None or elapsed < best[index]:
                best[index] = elapsed
    return best


def test_bench_health(benchmark):
    web = build_web()

    # -- 1. determinism: two seeded virtual brownout runs -----------------
    _r1, eng1, obs1, _c1 = crawl(web, brownout=True)
    _r2, eng2, obs2, _c2 = crawl(web, brownout=True)
    report_bytes = eng1.report_json()
    deterministic = (
        report_bytes == eng2.report_json()
        and obs1.tracer.export_jsonl() == obs2.tracer.export_jsonl()
        and len(report_bytes) > 0
    )
    quarantined = eng1.report()["sources"][SICK]["state"] == "quarantined"

    # -- 2. overhead: real-clock crawl with/without the engine -------------
    plain_s, health_s = best_of(
        [
            lambda: crawl(web, health=False, virtual=False)[0],
            lambda: crawl(web, health=True, virtual=False)[0],
        ]
    )
    overhead_pct = (health_s / plain_s - 1.0) * 100
    benchmark.pedantic(
        lambda: crawl(web, health=True, virtual=False), rounds=1, iterations=1
    )

    # -- 3. recovery: clean vs brownout vs brownout+feedback ---------------
    clean, _e, _o, _c = crawl(web, brownout=False, health=False)
    unmanaged, _e, _o, _c = crawl(web, brownout=True, health=False)
    managed, _e, _o, _c = crawl(web, brownout=True, health=True)
    t_clean = healthy_throughput(clean)
    t_unmanaged = healthy_throughput(unmanaged)
    t_managed = healthy_throughput(managed)
    recovery_pct = 100.0 * t_managed / t_clean if t_clean else 0.0
    unmanaged_pct = 100.0 * t_unmanaged / t_clean if t_clean else 0.0

    print(f"\nE20: health engine ({len(SOURCES)} sources, {SICK} browned out, "
          f"virtual clock; overhead best of {ROUNDS} real-clock runs)")
    print(f"  verdicts byte-identical across seeded runs: {deterministic}")
    print(f"  sick source quarantined: {quarantined}")
    print(f"  {'crawl variant':<26} {'elapsed (s)':>12}")
    print(f"  {'health off (real)':<26} {plain_s:>12.3f}")
    print(f"  {'health on (real)':<26} {health_s:>12.3f}  "
          f"({overhead_pct:+.1f}%)")
    print(f"  {'scenario':<26} {'healthy pages/s':>16} {'vs clean':>10}")
    print(f"  {'clean (no brownout)':<26} {t_clean:>16.2f} {'--':>10}")
    print(f"  {'brownout, no feedback':<26} {t_unmanaged:>16.2f} "
          f"{unmanaged_pct:>9.1f}%")
    print(f"  {'brownout + quarantine':<26} {t_managed:>16.2f} "
          f"{recovery_pct:>9.1f}%")

    record_result(
        "E20",
        {
            "deterministic": deterministic,
            "quarantined": quarantined,
            "plain_s": round(plain_s, 4),
            "health_s": round(health_s, 4),
            "overhead_pct": round(overhead_pct, 2),
            "budget_pct": BUDGET_PCT,
            "clean_throughput": round(t_clean, 2),
            "unmanaged_throughput": round(t_unmanaged, 2),
            "managed_throughput": round(t_managed, 2),
            "unmanaged_pct": round(unmanaged_pct, 1),
            "recovery_pct": round(recovery_pct, 1),
            "recovery_floor_pct": RECOVERY_FLOOR_PCT,
        },
    )

    assert deterministic
    assert quarantined
    assert (
        overhead_pct <= BUDGET_PCT or (health_s - plain_s) <= NOISE_FLOOR_S
    ), f"health engine costs {overhead_pct:+.1f}% on a live crawl"
    assert recovery_pct >= RECOVERY_FLOOR_PCT, (
        f"quarantine recovered only {recovery_pct:.1f}% of clean throughput"
    )
    assert t_managed > t_unmanaged, (
        "feedback did not beat the unmanaged brownout crawl"
    )
