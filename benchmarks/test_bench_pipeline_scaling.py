"""E3 -- processing-pipeline parallelisation and serialisable hand-offs.

Claims (section 2.1): parallelising and pipelining the processing steps
improves throughput; intermediate representations are serialisable so
steps can run on multiple hosts.

Reproduction: process a fixed crawl batch through the
check -> parse -> extract pipeline with a worker sweep, and measure the
serialisation boundary's cost (on/off at the same worker count).
Expected shape: throughput grows with workers; serialisation adds a
modest constant overhead -- the price of multi-host deployability.
"""

from conftest import record_result

from repro.core import Checker, Extractor, ParserDispatch, Porter
from repro.core.pipeline import Codec, Pipeline, Stage
from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
from repro.ontology import CTIRecord, ReportRecord
from repro.runtime import VirtualClock
from repro.websim import SimulatedTransport, build_default_web


def build_reports():
    # The input batch comes from a virtual-clock crawl (instant wall
    # time); the pipeline sweep below measures real CPU throughput, so
    # it stays on the real clock.
    web = build_default_web(scenario_count=15, reports_per_site=4)
    engine = CrawlEngine(
        build_all_crawlers(),
        Fetcher(SimulatedTransport(web, time_scale=1.0, clock=VirtualClock())),
        num_threads=8,
    )
    return Porter().port(engine.crawl().documents)


def make_pipeline(workers: int, serialize: bool):
    checker = Checker()
    parsers = ParserDispatch()
    extractor = Extractor()
    report_codec = (
        Codec(encode=lambda r: r.to_json(), decode=ReportRecord.from_json)
        if serialize
        else None
    )
    cti_codec = (
        Codec(encode=lambda r: r.to_json(), decode=CTIRecord.from_json)
        if serialize
        else None
    )
    return Pipeline(
        [
            Stage(
                "check",
                lambda r: r if checker.why_rejected(r) is None else None,
                workers=1,
                codec=report_codec,
            ),
            Stage("parse", parsers.parse, workers=workers, codec=cti_codec),
            Stage("extract", extractor.extract, workers=workers, codec=cti_codec),
        ]
    )


def test_bench_pipeline_scaling(benchmark):
    reports = build_reports()
    series = []
    for workers in (1, 2, 4, 8):
        result = make_pipeline(workers, serialize=False).run(reports)
        series.append(
            {
                "workers": workers,
                "reports_per_s": round(result.throughput, 1),
                "elapsed_s": round(result.elapsed, 3),
            }
        )

    plain = benchmark.pedantic(
        make_pipeline(4, serialize=False).run, args=(reports,), rounds=1, iterations=1
    )
    serialized = make_pipeline(4, serialize=True).run(reports)
    overhead = serialized.elapsed / plain.elapsed - 1.0

    print("\nE3: processing pipeline scaling "
          f"({len(reports)} reports, check->parse->extract)")
    print(f"  {'workers':>8} {'reports/s':>10} {'elapsed (s)':>12}")
    for row in series:
        print(f"  {row['workers']:>8} {row['reports_per_s']:>10} "
              f"{row['elapsed_s']:>12}")
    print(
        f"  serialisable hand-offs (4 workers): "
        f"{serialized.elapsed:.3f}s vs {plain.elapsed:.3f}s plain "
        f"({overhead * 100:+.0f}% overhead)"
    )
    print(f"  outputs identical: "
          f"{len(serialized.outputs) == len(plain.outputs)}")

    record_result(
        "E3",
        {
            "series": series,
            "serialize_overhead_pct": round(overhead * 100, 1),
            "outputs_equal": len(serialized.outputs) == len(plain.outputs),
        },
    )
    assert len(serialized.outputs) == len(plain.outputs)
    # CPython threads give limited CPU-bound speedups; the shape to
    # reproduce is monotone non-degradation plus multi-host readiness.
    assert series[-1]["elapsed_s"] <= series[0]["elapsed_s"] * 1.5
