"""E24 -- deterministic profiling and the perf-baseline gate.

Four claims from the profiling layer (``repro.obs.profile``), measured
on the same E3-style workload E19 uses:

* **Hotspot ranking** -- a live-traced pipeline run on the wall clock
  yields a self-time ranking of span names; extraction work (NER
  feature matching, relation extraction) is expected to dominate the
  per-stage self time.
* **Artefact byte-identity** -- two seeded virtual-clock system runs
  (``time_scale=1.0`` so simulated waits produce nonzero durations)
  export byte-identical collapsed-stack flamegraph text and identical
  profile dicts.
* **PROFILE row-identity** -- Cypher queries run under ``PROFILE``
  return exactly the rows of their unprofiled execution, at 1 and 4
  partitions, and the annotated operator trees are deterministic under
  a virtual clock with ``step_cost``.
* **The regression gate** -- per-stage *shares* of total pipeline self
  time are compared against the committed
  ``benchmarks/results/perf_baseline.json``; a share drifting more
  than 15% (relative, with an absolute noise floor) fails the run.
  Absolute seconds are hardware-dependent, shares are not -- the
  committed baseline stores the absolute unit costs informationally.
  Regenerate with ``REPRO_UPDATE_PERF_BASELINE=1``.

Off-path overhead is E19's claim: the profile layer is pure functions
over the trace export, and the only hot-path additions (the ``outcome``
and ``tokens`` span attributes) ride the already-budgeted instrumented
stage runner that E19 gates at 2%.
"""

import json
import os
from pathlib import Path

from conftest import record_result
from test_bench_observability import build_reports

from repro import SecurityKG, SystemConfig
from repro.core import Checker, Extractor, ParserDispatch
from repro.core.pipeline import Pipeline, Stage
from repro.obs import make_obs
from repro.obs.profile import (
    aggregate,
    hotspots,
    load_baseline,
    profile_dict,
    render_folded,
    unit_costs,
)
from repro.ontology.entities import EntityType
from repro.ontology.intermediate import CTIRecord, Mention
from repro.runtime import clock_from_name
from repro.sharding import ShardSet, ShardedCypherEngine

BASELINE_PATH = Path(__file__).parent / "results" / "perf_baseline.json"
#: Stages whose self-time shares the baseline pins.
STAGE_NAMES = ("check", "parse", "extract", "extract.ner", "extract.relation")
#: Relative drift tolerance per stage share (the 15% gate).
SHARE_TOLERANCE = 0.15
#: Absolute share-point floor: a stage near zero self time can drift
#: by scheduler noise alone, so sub-5-point moves never fail the gate.
SHARE_FLOOR = 0.05

QUERIES = (
    "MATCH (m:Malware) RETURN m.name ORDER BY m.name",
    "MATCH (m:Malware) RETURN m.type, count(m) ORDER BY m.type",
)

_ENTITIES = [
    ("agent tesla", EntityType.MALWARE),
    ("zeus panda", EntityType.MALWARE),
    ("vidar stealer", EntityType.MALWARE),
    ("APT29", EntityType.THREAT_ACTOR),
    ("mimikatz", EntityType.TOOL),
]


def _records(count: int) -> list[CTIRecord]:
    out = []
    for index in range(count):
        name, etype = _ENTITIES[index % len(_ENTITIES)]
        out.append(
            CTIRecord(
                report_id=f"rpt-{index:04d}",
                source="BenchSource",
                url=f"https://bench.test/report/{index}",
                title=f"report {index} on {name}",
                mentions=[Mention(name, etype, confidence=0.9)],
            )
        )
    return out


def run_wall_profile(reports):
    """One live-traced pipeline run on the wall clock; returns spans.

    Unlike E19's throughput pipeline this one runs every stage on a
    single worker: per-span wall time on a GIL-contended stage measures
    scheduling, not work, and the baseline gate needs stable per-stage
    attribution.
    """
    obs = make_obs()
    checker = Checker()
    parsers = ParserDispatch()
    extractor = Extractor(obs=obs)
    pipeline = Pipeline(
        [
            Stage(
                "check",
                lambda r: r if checker.why_rejected(r) is None else None,
            ),
            Stage("parse", parsers.parse),
            Stage("extract", extractor.extract),
        ],
        obs=obs,
    )
    pipeline.run(reports)
    return obs.tracer.export()


def run_virtual_system():
    """A seeded virtual-clock system run with modeled latencies."""
    clock = clock_from_name("virtual")
    obs = make_obs(clock)
    kg = SecurityKG(
        SystemConfig(
            scenario_count=5,
            reports_per_site=2,
            clock="virtual",
            time_scale=1.0,
        ),
        clock=clock,
        obs=obs,
    )
    kg.run_once()
    return obs.tracer.export()


def stage_shares(spans) -> dict[str, float]:
    """Each pinned stage's share of their combined self time."""
    table = aggregate(spans)
    selfs = {
        name: table.get(name, {"self_s": 0.0})["self_s"]
        for name in STAGE_NAMES
    }
    total = sum(selfs.values())
    return {
        name: (value / total if total else 0.0)
        for name, value in selfs.items()
    }


def profiled_engine(partitions: int):
    clock = clock_from_name("virtual")
    shards = ShardSet(partitions, obs=make_obs(clock), clock=clock)
    shards.store(_records(24))
    return shards, ShardedCypherEngine([p.cypher for p in shards.partitions])


def test_bench_profiling(benchmark):
    reports = build_reports()

    # -- hotspot ranking on the wall clock ---------------------------------
    # Three rounds over a tripled batch, per-stage median share:
    # per-item stage times are ~1ms, so a bigger batch and a median
    # keep timer resolution and scheduler hiccups out of the shares.
    batch = reports * 3
    rounds = [run_wall_profile(batch) for _ in range(3)]
    round_shares = [stage_shares(spans) for spans in rounds]
    shares = {
        name: sorted(rs[name] for rs in round_shares)[1]
        for name in STAGE_NAMES
    }
    wall_spans = rounds[-1]
    wall_hot = hotspots(wall_spans, top=10)
    wall_costs = unit_costs(wall_spans)
    benchmark.pedantic(
        profile_dict, args=(wall_spans,), rounds=3, iterations=1
    )

    # -- artefact byte-identity across seeded virtual runs -----------------
    first, second = run_virtual_system(), run_virtual_system()
    folded_first, folded_second = render_folded(first), render_folded(second)
    folded_identical = folded_first == folded_second and len(folded_first) > 0
    dict_identical = profile_dict(first) == profile_dict(second)
    has_nonzero = any(
        int(line.rsplit(" ", 1)[1]) > 0
        for line in folded_first.strip().splitlines()
    )

    # -- PROFILE row-identity at 1 and 4 partitions ------------------------
    # Determinism is the golden-trace contract: two *fresh* seeded
    # deployments produce identical annotated trees (repeated calls on
    # one deployment drift by float ULPs as the virtual clock's
    # absolute time grows).
    rows_identical = True
    trees_deterministic = True
    for partitions in (1, 4):
        trees = []
        for _ in range(2):
            shards, engine = profiled_engine(partitions)
            try:
                build_trees = []
                for query in QUERIES:
                    plain = engine.run(query)
                    rows_identical &= engine.run(f"PROFILE {query}") == plain
                    prof = engine.profile(query, step_cost=1e-6)
                    rows_identical &= prof.rows == plain
                    build_trees.append(
                        json.dumps(prof.to_dict(), sort_keys=True)
                    )
                trees.append(build_trees)
            finally:
                shards.close()
        trees_deterministic &= trees[0] == trees[1]

    # -- the perf-baseline gate --------------------------------------------
    measured = {
        "stage_shares": {k: round(v, 4) for k, v in shares.items()},
        "unit_costs": {
            name: {
                "self_per_report_s": wall_costs[name]["self_per_report_s"],
                "self_per_unit_s": wall_costs[name]["self_per_unit_s"],
            }
            for name in STAGE_NAMES
            if name in wall_costs
        },
        "share_tolerance": SHARE_TOLERANCE,
        "share_floor": SHARE_FLOOR,
    }
    if (
        os.environ.get("REPRO_UPDATE_PERF_BASELINE") == "1"
        or not BASELINE_PATH.exists()
    ):
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(measured, indent=2, sort_keys=True) + "\n"
        )
    baseline = load_baseline(BASELINE_PATH)

    print(f"\nE24: profiling ({len(batch)} reports, "
          "check->parse->extract, wall clock)")
    print(f"  {'span':<22} {'self_s':>9} {'self%':>7}")
    for entry in wall_hot[:6]:
        print(f"  {entry['name']:<22} {entry['self_s']:>9.4f} "
              f"{entry['self_pct']:>6.1f}%")
    print(f"  {'stage':<22} {'share':>9} {'baseline':>9}")
    for name in STAGE_NAMES:
        print(f"  {name:<22} {shares[name]:>9.3f} "
              f"{baseline['stage_shares'][name]:>9.3f}")
    print(f"  folded byte-identical across virtual runs: {folded_identical}")
    print(f"  PROFILE rows identical at 1 and 4 partitions: {rows_identical}")

    record_result(
        "E24",
        {
            "hotspots": [
                {
                    "name": entry["name"],
                    "self_s": round(entry["self_s"], 4),
                    "self_pct": round(entry["self_pct"], 1),
                }
                for entry in wall_hot[:6]
            ],
            "stage_shares": measured["stage_shares"],
            "ner_self_per_token_s": (
                wall_costs["extract.ner"]["self_per_unit_s"].get("tokens")
                if "extract.ner" in wall_costs
                else None
            ),
            "folded_identical": folded_identical,
            "profile_dict_identical": dict_identical,
            "profile_rows_identical": rows_identical,
            "profile_trees_deterministic": trees_deterministic,
            "share_tolerance": SHARE_TOLERANCE,
        },
    )

    assert folded_identical and dict_identical
    assert has_nonzero, "virtual run produced an all-zero folded export"
    assert rows_identical and trees_deterministic
    for rs in round_shares:  # shares partition the stages' self time
        assert abs(sum(rs.values()) - 1.0) < 1e-9
    for name in STAGE_NAMES:
        base = baseline["stage_shares"][name]
        drift = abs(shares[name] - base)
        assert drift <= max(SHARE_TOLERANCE * base, SHARE_FLOOR), (
            f"stage {name} self-time share {shares[name]:.3f} drifted "
            f"from baseline {base:.3f} beyond the "
            f"{SHARE_TOLERANCE:.0%} gate"
        )
