"""E4 -- entity-recognition quality (paper section 2.4).

Claims: the extractors are "highly accurate (> 92% F1)"; the CRF
"can outperform a naive entity recognition solution that relies on
regex rules, and generalize to entities that are not in the training
set".

Reproduction: train the CRF on data-programming-synthesized labels,
evaluate on held-out reports whose entity names are partly absent from
every curated list, against the regex and gazetteer baselines.
Expected shape: CRF > gazetteer > regex, CRF above 0.92 micro-F1, and
nonzero recall on the unseen names (which the baselines cannot reach).
"""

from conftest import record_result

from repro.nlp import GazetteerRecognizer, RegexRecognizer, evaluate_entities
from repro.ontology import EntityType
from repro.websim.seeds import (
    MALWARE_FAMILIES,
    THREAT_ACTORS,
    split_bank,
)


def evaluate(recognizer, contents):
    predicted, gold = [], []
    for content in contents:
        text = " ".join(gs.text for gs in content.truth.sentences)
        _sents, mentions = recognizer.extract(text)
        predicted += [(m.text, m.type) for m in mentions]
        gold += [
            (m.text, m.type) for gs in content.truth.sentences for m in gs.mentions
        ]
    return evaluate_entities(predicted, gold), predicted, gold


def unseen_recall(predicted, gold):
    """Recall restricted to names outside every curated list."""
    unseen_names = set(split_bank(MALWARE_FAMILIES)[1]) | set(
        split_bank(THREAT_ACTORS)[1]
    )
    gold_unseen = [
        (t, k)
        for t, k in gold
        if t.lower() in unseen_names
        and k in (EntityType.MALWARE, EntityType.THREAT_ACTOR)
    ]
    if not gold_unseen:
        return None
    predicted_set = {(t.lower(), k) for t, k in predicted}
    hit = sum(1 for t, k in gold_unseen if (t.lower(), k) in predicted_set)
    return hit / len(gold_unseen)


def test_bench_ner_f1(benchmark, trained_crf, heldout_contents):
    rows = []
    measured = {}
    for name, recognizer in (
        ("crf", trained_crf),
        ("gazetteer", GazetteerRecognizer()),
        ("regex", RegexRecognizer()),
    ):
        evaluation, predicted, gold = evaluate(recognizer, heldout_contents)
        rows.append(
            {
                "recognizer": name,
                "precision": round(evaluation.micro.precision, 3),
                "recall": round(evaluation.micro.recall, 3),
                "f1": round(evaluation.micro.f1, 3),
                "macro_f1": round(evaluation.macro_f1, 3),
                "unseen_recall": unseen_recall(predicted, gold),
            }
        )
        measured[name] = evaluation

    # time the CRF extraction path for the record
    text = " ".join(
        gs.text for gs in heldout_contents[0].truth.sentences
    )
    benchmark.pedantic(trained_crf.extract, args=(text,), rounds=3, iterations=1)

    print("\nE4: security-entity recognition on held-out reports")
    print(f"  {'recognizer':<12} {'P':>6} {'R':>6} {'F1':>6} "
          f"{'macroF1':>8} {'unseen-R':>9}")
    for row in rows:
        unseen = "n/a" if row["unseen_recall"] is None else f"{row['unseen_recall']:.2f}"
        print(
            f"  {row['recognizer']:<12} {row['precision']:>6} {row['recall']:>6} "
            f"{row['f1']:>6} {row['macro_f1']:>8} {unseen:>9}"
        )
    print("  paper claim: > 92% F1; CRF beats naive regex and generalises "
          "beyond the curated lists")

    record_result("E4", {"rows": rows, "claim": "> 0.92 F1, crf > baselines"})

    crf, gazetteer, regex = (measured[n].micro.f1 for n in ("crf", "gazetteer", "regex"))
    assert crf > 0.92, f"CRF micro-F1 {crf:.3f} below the paper's claim"
    assert crf > gazetteer > regex
    assert rows[0]["unseen_recall"] and rows[0]["unseen_recall"] > 0.8
    assert rows[1]["unseen_recall"] == 0.0  # gazetteer cannot generalise
