"""Legacy setup shim.

The offline environment has setuptools 65 without the ``wheel``
package, so PEP 517 editable installs cannot build.  This shim lets
``pip install -e . --no-use-pep517`` take the ``setup.py develop``
path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SecurityKG reproduction: automated open-source threat "
        "intelligence gathering and management (SIGMOD 2021 demo)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.nlp": ["data/*.txt"]},
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
